//! The rule catalog: token-pattern matchers over [`crate::lexer`] output.
//!
//! Each rule is scoped by [`FileClass`] (which crate, lib vs bin vs test
//! code) and skips `#[cfg(test)]` blocks via [`test_mask`]. Violations can
//! be suppressed site-by-site with a `// lint: allow(<rule>): reason`
//! comment on the same or the preceding line — the reason is mandatory by
//! convention (the lint does not parse it, reviewers do).

use crate::lexer::{lex, Tok, Token};
use crate::parse::{enclosing, type_head, Item, ItemKind};
use crate::symbols::{reachable_fns, SourceFile, SymbolTable};

/// Identifier of a lint rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// No nondeterministic containers, clocks, or process state in
    /// result-producing crates (`sim`, `core`, `cluster`).
    Determinism,
    /// No `unwrap`/`expect`/`panic!`/literal indexing in engine library
    /// code. Ratcheted by the checked-in baseline.
    PanicFree,
    /// Crate roots carry `#![forbid(unsafe_code)]`; `sim` and `core` also
    /// deny `missing_docs`.
    CrateHygiene,
    /// No `==`/`!=` against float literals outside approved helpers.
    FloatCmp,
    /// Every observer trait method has at least one emission site.
    ObserverEvents,
    /// No shared mutable state reachable from the service's hot estimate
    /// path; `ServiceShard` fields stay behind shard-owned methods.
    ShardIsolation,
    /// No allocating constructs in the engine's hot modules outside
    /// `SimArena` setup. Ratcheted by `lint-alloc-baseline.txt`.
    HotPathAlloc,
    /// The snapshot wire schema may only change together with a
    /// `FORMAT_VERSION` bump and a regenerated fingerprint file.
    SnapshotSchema,
}

impl Rule {
    /// Stable textual id used in diagnostics, allow markers, and `explain`.
    pub fn id(self) -> &'static str {
        match self {
            Rule::Determinism => "determinism",
            Rule::PanicFree => "panic-free",
            Rule::CrateHygiene => "crate-hygiene",
            Rule::FloatCmp => "float-cmp",
            Rule::ObserverEvents => "observer-events",
            Rule::ShardIsolation => "shard-isolation",
            Rule::HotPathAlloc => "hot-path-alloc",
            Rule::SnapshotSchema => "snapshot-schema",
        }
    }

    /// All rules, in catalog order.
    pub fn all() -> [Rule; 8] {
        [
            Rule::Determinism,
            Rule::PanicFree,
            Rule::CrateHygiene,
            Rule::FloatCmp,
            Rule::ObserverEvents,
            Rule::ShardIsolation,
            Rule::HotPathAlloc,
            Rule::SnapshotSchema,
        ]
    }

    /// Parse a rule id (as used by `explain` and allow markers).
    pub fn from_id(id: &str) -> Option<Rule> {
        Rule::all().into_iter().find(|r| r.id() == id)
    }

    /// Long-form description for `resmatch-lint explain <rule>`.
    pub fn explain(self) -> &'static str {
        match self {
            Rule::Determinism => {
                "determinism — the paper's figures only reproduce if a fixed seed \
                 yields bit-identical results, so result-producing crates (sim, core, \
                 cluster, service) must not consult nondeterministic state — the \
                 service additionally relies on it for shard-invariant routing and \
                 snapshot fidelity.\n\n\
                 Flagged in non-test library code of those crates:\n\
                 \x20 - HashMap::new / HashSet::new / with_capacity (SipHash with a \
                 per-process random key; iteration order varies run to run). Use \
                 `HashMap::default()` typed with a deterministic hasher such as \
                 `resmatch_core::similarity::FnvBuildHasher`, or a BTreeMap.\n\
                 \x20 - std::collections::hash_map::RandomState by name.\n\
                 \x20 - SystemTime / Instant::now (wall clocks leak host timing into \
                 results; bench timing lives in crates/bench, which is out of scope).\n\
                 \x20 - std::thread::current (thread ids vary) and std::env::var \
                 (host environment leaks into results).\n\n\
                 Suppress a site that provably cannot affect results (e.g. \
                 observability wall-clock accounting) with \
                 `// lint: allow(determinism): <why results are unaffected>`."
            }
            Rule::PanicFree => {
                "panic-free — engine hot paths must not panic under malformed input \
                 or violated assumptions; a panic mid-sweep poisons the worker pool \
                 and loses every completed point.\n\n\
                 Flagged in non-test, non-binary library code of every workspace \
                 crate:\n\
                 \x20 - .unwrap() and .expect(\"…\") calls. An expect whose message \
                 starts with `invariant:` is approved — it documents *why* the \
                 failure is impossible, e.g. .expect(\"invariant: run ids in \
                 free_run_ids are always live slots\").\n\
                 \x20 - panic!/unreachable!/todo!/unimplemented! macros.\n\
                 \x20 - indexing by integer literal (xs[0]) — prefer .first()/.get().\n\n\
                 Existing sites are recorded in lint-baseline.txt and may only \
                 ratchet DOWN: `check` fails when a file's count exceeds its \
                 baseline, and `baseline` rewrites the file after a burn-down. \
                 Prefer converting sites to typed errors; use `invariant:` expects \
                 only where the invariant genuinely holds by construction."
            }
            Rule::CrateHygiene => {
                "crate-hygiene — every workspace crate root must carry \
                 #![forbid(unsafe_code)] (the workspace is safe Rust end to end, \
                 and forbid cannot be overridden downstream). The public-API \
                 crates sim, core, workload, cluster, stats, repro, and service must \
                 additionally carry #![deny(missing_docs)]: their rustdoc is \
                 the contract estimator, observer, workload, and reproduction \
                 code is written against."
            }
            Rule::FloatCmp => {
                "float-cmp — exact `==`/`!=` against float literals silently \
                 breaks under rounding drift and reads as a bug even where it is \
                 intentional. Flagged in non-test library code of sim, core, \
                 cluster, workload, and service. Use ordered comparisons, integer/bit \
                 representations, or the helpers in resmatch-stats (the approved \
                 comparison-helper crate, exempt from this rule). A deliberate \
                 exact comparison (e.g. an exact-zero divisor guard) takes \
                 `// lint: allow(float-cmp): <why exactness is wanted>`."
            }
            Rule::ObserverEvents => {
                "observer-events — every method on SimObserver must have at least \
                 one emission site in crates/sim/src/engine.rs, and every method \
                 on SweepObserver one in crates/sim/src/experiment.rs. Observers \
                 are the product surface of PR 2; an event that is declared but \
                 never emitted goes silently dead for every downstream consumer. \
                 When adding a trait method, wire its engine emission in the same \
                 change; when removing an emission, remove or re-route the method."
            }
            Rule::ShardIsolation => {
                "shard-isolation — the service's estimate path is fast *because* it \
                 is shard-local: PR 7 proved one-thread-per-shard bit-identity, and \
                 that proof only generalises if no shared mutable state can creep \
                 in. Flagged in crates/service library code:\n\
                 \x20 - `static mut` items and statics whose type carries interior \
                 mutability (Mutex, RwLock, RefCell, Cell, Atomic*) — process-wide \
                 state is visible to every shard at once.\n\
                 \x20 - `Mutex`/`RwLock` usage inside any fn reachable (by \
                 name-based call graph) from an `estimate` fn — a lock on the hot \
                 path serialises shards and can deadlock under feedback flush.\n\
                 \x20 - `ServiceShard` field access (`shard.queue`, \
                 `self.shards[i].stats`) outside `impl ServiceShard` — shard \
                 internals are owned by the shard; cross-shard code goes through \
                 its methods so the flush-before-estimate rule cannot be bypassed.\n\n\
                 Suppress a site that provably cannot race (e.g. a read of an \
                 immutable static) with `// lint: allow(shard-isolation): <why>`."
            }
            Rule::HotPathAlloc => {
                "hot-path-alloc — PR 6 made the engine's steady state allocation-\
                 free (SimArena owns every buffer; sim/tests/alloc_steady.rs pins \
                 warm sweep points at <=8 allocations), and this rule freezes that \
                 discipline statically. Flagged in the hot modules (engine.rs, \
                 release.rs, queue.rs, store.rs, event.rs of crates/sim):\n\
                 \x20 - `Vec::new`/`VecDeque::new`/`Box::new`, `vec![…]`, \
                 `format!`, `.to_vec()`, and `.clone()` calls — each allocates on \
                 every execution of its enclosing code.\n\n\
                 Exempt: bodies inside `impl SimArena` (the arena IS the setup \
                 path) and fns named `new`/`default` or starting `with_`/`from_` \
                 (constructors run once per simulation, not per event). Remaining \
                 sites are recorded per file in lint-alloc-baseline.txt and may \
                 only ratchet DOWN, exactly like panic-free. A once-per-run site \
                 that must stand takes `// lint: allow(hot-path-alloc): <why>`."
            }
            Rule::SnapshotSchema => {
                "snapshot-schema — the RSNP snapshot codec is schema-static: wire \
                 layout IS struct declaration order, so reordering, renaming, \
                 retyping, adding, or removing a field on any type reachable from \
                 SnapshotDocument silently changes the bytes every saved snapshot \
                 and every future federation peer depends on. The linter parses \
                 that type closure (service/file.rs, core/snapshot.rs and the \
                 persisted group structs), renders field names/types/order into a \
                 canonical listing, and FNV-1a-64 fingerprints it into the \
                 committed snapshot-schema.txt.\n\n\
                 `check` fails when the fingerprint drifts while FORMAT_VERSION \
                 (crates/service/src/file.rs) is unchanged. An intentional format \
                 change is two edits in one PR: bump FORMAT_VERSION, then run \
                 `cargo run -p resmatch-lint -- schema` to regenerate the \
                 fingerprint file (CI diffs it, so a stale file cannot merge)."
            }
        }
    }
}

/// How a source file participates in rule scoping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library code: every content rule applies.
    Lib,
    /// Binary / bench / example code: exempt from content rules.
    Bin,
    /// Integration-test code: exempt from content rules.
    Test,
}

/// Classification of one scanned file.
#[derive(Debug, Clone)]
pub struct FileClass {
    /// Short crate name: the directory under `crates/` (e.g. `sim`), or
    /// `resmatch` for the root facade crate.
    pub crate_name: String,
    /// Lib / bin / test role.
    pub kind: FileKind,
    /// True for the crate root (`src/lib.rs`).
    pub is_crate_root: bool,
}

/// One diagnostic finding.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Which rule fired.
    pub rule: Rule,
    /// Workspace-relative path (`/`-separated for stable baselines).
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Byte length of the offending token(s), for caret rendering.
    pub len: u32,
    /// Human-readable message.
    pub msg: String,
}

/// Crates whose library code must be deterministic.
const DETERMINISM_CRATES: [&str; 5] = ["sim", "core", "cluster", "service", "classad"];
/// Crates whose library code is subject to the float-comparison rule.
/// `stats` is the approved comparison-helper crate and deliberately absent.
const FLOAT_CMP_CRATES: [&str; 6] = ["sim", "core", "cluster", "workload", "service", "classad"];
/// Crates whose public API must be fully documented.
const DENY_MISSING_DOCS_CRATES: [&str; 8] = [
    "sim", "core", "workload", "cluster", "stats", "repro", "service", "classad",
];
/// Files exempt from the float-comparison rule by path: the ClassAd
/// numeric evaluator implements the language's own `==`/`!=` semantics and
/// must compare floats exactly by specification.
const FLOAT_CMP_EXEMPT_FILES: [&str; 1] = ["crates/classad/src/value.rs"];
/// The engine's hot modules, where [`Rule::HotPathAlloc`] applies: every
/// file on the per-event path PR 6 made steady-state allocation-free,
/// plus the matchmaking attempt path (matcher, expression compiler, and
/// the allocator seam) now that match attempts run allocation-free too.
pub const HOT_PATH_FILES: [&str; 8] = [
    "crates/sim/src/engine.rs",
    "crates/sim/src/release.rs",
    "crates/sim/src/queue.rs",
    "crates/sim/src/store.rs",
    "crates/sim/src/event.rs",
    "crates/classad/src/matchmaker.rs",
    "crates/classad/src/compile.rs",
    "crates/cluster/src/matchmaking.rs",
];

/// Compute, per token index, whether the token sits inside `#[cfg(test)]`
/// (or `#[cfg(…test…)]` without `not`) gated code. Attribute + following
/// item (up to its balanced `{…}` block or terminating `;`) are masked.
pub fn test_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        if let Some(after_attr) = match_cfg_test(tokens, i) {
            // Mask the attribute itself.
            for m in mask.iter_mut().take(after_attr).skip(i) {
                *m = true;
            }
            // Mask forward to the end of the gated item: the matching close
            // of its first `{` block, or a top-level `;` before any `{`.
            let mut j = after_attr;
            let mut depth = 0i32;
            let mut opened = false;
            while j < tokens.len() {
                match tokens[j].tok {
                    Tok::Punct('{') => {
                        depth += 1;
                        opened = true;
                    }
                    Tok::Punct('}') => {
                        depth -= 1;
                        if opened && depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    Tok::Punct(';') if !opened => {
                        j += 1;
                        break;
                    }
                    _ => {}
                }
                j += 1;
            }
            for m in mask.iter_mut().take(j).skip(after_attr) {
                *m = true;
            }
            i = j;
        } else {
            i += 1;
        }
    }
    mask
}

/// If tokens at `i` start a `#[cfg(…test…)]` attribute (without a `not`),
/// return the index one past the closing `]`.
fn match_cfg_test(tokens: &[Token], i: usize) -> Option<usize> {
    let ident =
        |j: usize, s: &str| matches!(&tokens.get(j)?.tok, Tok::Ident(x) if x == s).then_some(());
    let punct =
        |j: usize, c: char| matches!(&tokens.get(j)?.tok, Tok::Punct(x) if *x == c).then_some(());
    punct(i, '#')?;
    // Outer attribute only: `#![cfg(test)]` at crate level never gates the
    // workspace's code, and inner attrs start with `!`.
    punct(i + 1, '[')?;
    ident(i + 2, "cfg")?;
    punct(i + 3, '(')?;
    // Scan the attribute body for `test`, bail on `not`.
    let mut j = i + 4;
    let mut depth = 1i32;
    let mut saw_test = false;
    let mut saw_not = false;
    while j < tokens.len() && depth > 0 {
        match &tokens[j].tok {
            Tok::Punct('(') => depth += 1,
            Tok::Punct(')') => depth -= 1,
            Tok::Ident(s) if s == "test" => saw_test = true,
            Tok::Ident(s) if s == "not" => saw_not = true,
            _ => {}
        }
        j += 1;
    }
    // Expect the closing `]`.
    punct(j, ']')?;
    (saw_test && !saw_not).then_some(j + 1)
}

/// Set of (line, rule) suppressions: a directive suppresses its own line
/// and the next one, so both trailing and preceding-line comments work.
struct Allows(Vec<(u32, String)>);

impl Allows {
    fn permits(&self, line: u32, rule: Rule) -> bool {
        self.0
            .iter()
            .any(|(l, r)| (*l == line || l + 1 == line) && r == rule.id())
    }
}

/// Run every per-file rule over one source file.
///
/// `path` must be workspace-relative with `/` separators — it is embedded
/// in diagnostics and the baseline file.
pub fn check_file(path: &str, src: &str, class: &FileClass) -> Vec<Violation> {
    let lexed = lex(src);
    let mask = test_mask(&lexed.tokens);
    let hot = HOT_PATH_FILES.contains(&path);
    let items = if hot {
        Some(crate::parse::parse_items(src, &lexed))
    } else {
        None
    };
    let allows = Allows(lexed.allows.into_iter().map(|a| (a.line, a.rule)).collect());
    let mut out = Vec::new();

    if class.kind == FileKind::Lib {
        if DETERMINISM_CRATES.contains(&class.crate_name.as_str()) {
            determinism(path, &lexed.tokens, &mask, &allows, &mut out);
        }
        panic_free(path, &lexed.tokens, &mask, &allows, &mut out);
        if FLOAT_CMP_CRATES.contains(&class.crate_name.as_str())
            && !FLOAT_CMP_EXEMPT_FILES.contains(&path)
        {
            float_cmp(path, &lexed.tokens, &mask, &allows, &mut out);
        }
        if let Some(items) = &items {
            hot_path_alloc(path, &lexed.tokens, &mask, items, &allows, &mut out);
        }
    }
    if class.is_crate_root && class.kind == FileKind::Lib {
        crate_hygiene(path, &lexed.tokens, class, &mut out);
    }
    out
}

fn push(
    out: &mut Vec<Violation>,
    allows: &Allows,
    rule: Rule,
    path: &str,
    tok: &Token,
    msg: String,
) {
    if !allows.permits(tok.line, rule) {
        out.push(Violation {
            rule,
            path: path.to_string(),
            line: tok.line,
            col: tok.col,
            len: tok.len,
            msg,
        });
    }
}

fn is_ident(t: Option<&Token>, s: &str) -> bool {
    matches!(t, Some(Token { tok: Tok::Ident(x), .. }) if x == s)
}

fn is_punct(t: Option<&Token>, c: char) -> bool {
    matches!(t, Some(Token { tok: Tok::Punct(x), .. }) if *x == c)
}

/// Rule 1: determinism.
fn determinism(
    path: &str,
    tokens: &[Token],
    mask: &[bool],
    allows: &Allows,
    out: &mut Vec<Violation>,
) {
    for (i, t) in tokens.iter().enumerate() {
        if mask[i] {
            continue;
        }
        let Tok::Ident(name) = &t.tok else { continue };
        let next2 = |a: &str, b: &str| {
            is_punct(tokens.get(i + 1), ':')
                && is_punct(tokens.get(i + 2), ':')
                && (is_ident(tokens.get(i + 3), a) || is_ident(tokens.get(i + 3), b))
        };
        match name.as_str() {
            "HashMap" | "HashSet" if next2("new", "with_capacity") => push(
                out,
                allows,
                Rule::Determinism,
                path,
                t,
                format!(
                    "`{name}::new()` seeds SipHash from process randomness; use \
                     `{name}::default()` with a deterministic hasher (e.g. \
                     `FnvBuildHasher`) or a BTree container"
                ),
            ),
            "RandomState" => push(
                out,
                allows,
                Rule::Determinism,
                path,
                t,
                "`RandomState` is seeded per process; use a deterministic \
                 BuildHasher"
                    .to_string(),
            ),
            "SystemTime" => push(
                out,
                allows,
                Rule::Determinism,
                path,
                t,
                "wall-clock `SystemTime` in result-producing code".to_string(),
            ),
            "Instant" if next2("now", "now") => push(
                out,
                allows,
                Rule::Determinism,
                path,
                t,
                "wall-clock `Instant::now` in result-producing code".to_string(),
            ),
            "thread" if next2("current", "current") => push(
                out,
                allows,
                Rule::Determinism,
                path,
                t,
                "`thread::current` leaks thread identity into results".to_string(),
            ),
            "env" if next2("var", "var_os") || next2("vars", "vars_os") => push(
                out,
                allows,
                Rule::Determinism,
                path,
                t,
                "`std::env` reads leak host environment into results".to_string(),
            ),
            _ => {}
        }
    }
}

/// Rule 2: panic-freedom (baseline-ratcheted).
fn panic_free(
    path: &str,
    tokens: &[Token],
    mask: &[bool],
    allows: &Allows,
    out: &mut Vec<Violation>,
) {
    for (i, t) in tokens.iter().enumerate() {
        if mask[i] {
            continue;
        }
        match &t.tok {
            Tok::Ident(name)
                if name == "unwrap"
                    && is_punct(tokens.get(i.wrapping_sub(1)), '.')
                    && is_punct(tokens.get(i + 1), '(') =>
            {
                push(
                    out,
                    allows,
                    Rule::PanicFree,
                    path,
                    t,
                    "`.unwrap()` can panic; convert to a typed error or an \
                     `invariant:`-documented expect"
                        .to_string(),
                );
            }
            Tok::Ident(name)
                if name == "expect"
                    && is_punct(tokens.get(i.wrapping_sub(1)), '.')
                    && is_punct(tokens.get(i + 1), '(') =>
            {
                let documented = matches!(
                    tokens.get(i + 2),
                    Some(Token { tok: Tok::Str(s), .. }) if s.starts_with("invariant:")
                );
                if !documented {
                    push(
                        out,
                        allows,
                        Rule::PanicFree,
                        path,
                        t,
                        "`.expect(…)` without an `invariant:`-prefixed message; \
                         document why failure is impossible or return a typed \
                         error"
                            .to_string(),
                    );
                }
            }
            Tok::Ident(name)
                if matches!(
                    name.as_str(),
                    "panic" | "unreachable" | "todo" | "unimplemented"
                ) && is_punct(tokens.get(i + 1), '!')
                    && !is_punct(tokens.get(i.wrapping_sub(1)), '.') =>
            {
                push(
                    out,
                    allows,
                    Rule::PanicFree,
                    path,
                    t,
                    format!("`{name}!` in engine library code"),
                );
            }
            Tok::Int => {
                // Indexing by literal: `expr[0]` where expr ends in an
                // identifier, `)` or `]`. Array types/repeats (`[0; 4]`,
                // `[u8; 2]`) and attributes don't match this shape.
                let prev_is_open = is_punct(tokens.get(i.wrapping_sub(1)), '[');
                let next_is_close = is_punct(tokens.get(i + 1), ']');
                let before = tokens.get(i.wrapping_sub(2));
                let indexee = matches!(
                    before,
                    Some(Token {
                        tok: Tok::Ident(_),
                        ..
                    }) | Some(Token {
                        tok: Tok::Punct(')'),
                        ..
                    }) | Some(Token {
                        tok: Tok::Punct(']'),
                        ..
                    })
                );
                if prev_is_open && next_is_close && indexee && i >= 2 {
                    // `ident[…]` where ident is a type keyword is impossible
                    // here since types take `[T; N]` with a `;`.
                    push(
                        out,
                        allows,
                        Rule::PanicFree,
                        path,
                        t,
                        "indexing by integer literal can panic; prefer \
                         `.first()`/`.get(n)`"
                            .to_string(),
                    );
                }
            }
            _ => {}
        }
    }
}

/// Rule 4: float comparisons.
fn float_cmp(
    path: &str,
    tokens: &[Token],
    mask: &[bool],
    allows: &Allows,
    out: &mut Vec<Violation>,
) {
    for i in 0..tokens.len() {
        if mask[i] {
            continue;
        }
        // `==`: two adjacent `=` (not part of `<=`, `>=`, `!=` — those have
        // exactly one). `!=`: `!` followed by `=`.
        let eq = is_punct(tokens.get(i), '=')
            && is_punct(tokens.get(i + 1), '=')
            && !is_punct(tokens.get(i.wrapping_sub(1)), '=');
        let ne = is_punct(tokens.get(i), '!') && is_punct(tokens.get(i + 1), '=');
        if !eq && !ne {
            continue;
        }
        let lhs_float = matches!(
            tokens.get(i.wrapping_sub(1)),
            Some(Token {
                tok: Tok::Float,
                ..
            })
        );
        // Skip a unary minus on the right-hand side.
        let mut r = i + 2;
        if is_punct(tokens.get(r), '-') {
            r += 1;
        }
        let rhs_float = matches!(
            tokens.get(r),
            Some(Token {
                tok: Tok::Float,
                ..
            })
        );
        if lhs_float || rhs_float {
            let t = &tokens[i];
            push(
                out,
                allows,
                Rule::FloatCmp,
                path,
                t,
                "exact float comparison against a literal; use an approx helper \
                 (resmatch-stats) or document with `lint: allow(float-cmp)`"
                    .to_string(),
            );
        }
    }
}

/// Rule 3: crate-root hygiene attributes.
fn crate_hygiene(path: &str, tokens: &[Token], class: &FileClass, out: &mut Vec<Violation>) {
    let has_inner_attr = |lint: &str, arg: &str| {
        tokens.windows(6).any(|w| {
            is_punct(w.first(), '#')
                && is_punct(w.get(1), '!')
                && is_punct(w.get(2), '[')
                && is_ident(w.get(3), lint)
                && is_punct(w.get(4), '(')
                && is_ident(w.get(5), arg)
        })
    };
    if !has_inner_attr("forbid", "unsafe_code") {
        out.push(Violation {
            rule: Rule::CrateHygiene,
            path: path.to_string(),
            line: 1,
            col: 1,
            len: 1,
            msg: "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
        });
    }
    if DENY_MISSING_DOCS_CRATES.contains(&class.crate_name.as_str())
        && !has_inner_attr("deny", "missing_docs")
    {
        out.push(Violation {
            rule: Rule::CrateHygiene,
            path: path.to_string(),
            line: 1,
            col: 1,
            len: 1,
            msg: format!(
                "public-API crate `{}` must carry `#![deny(missing_docs)]`",
                class.crate_name
            ),
        });
    }
}

/// Rule 7: hot-path allocation discipline (baseline-ratcheted).
///
/// `items` is the parsed item tree of the file — exemption decisions
/// (constructor fns, `impl SimArena` bodies) are made on the enclosing
/// item chain of each site, which a flat token scan cannot see.
fn hot_path_alloc(
    path: &str,
    tokens: &[Token],
    mask: &[bool],
    items: &[Item],
    allows: &Allows,
    out: &mut Vec<Violation>,
) {
    for (i, t) in tokens.iter().enumerate() {
        if mask[i] {
            continue;
        }
        let Tok::Ident(name) = &t.tok else { continue };
        let path_call = |target: &str| {
            is_punct(tokens.get(i + 1), ':')
                && is_punct(tokens.get(i + 2), ':')
                && is_ident(tokens.get(i + 3), target)
        };
        let method_call =
            is_punct(tokens.get(i.wrapping_sub(1)), '.') && is_punct(tokens.get(i + 1), '(');
        let msg = match name.as_str() {
            "vec" if is_punct(tokens.get(i + 1), '!') => {
                Some("`vec![…]` allocates a fresh Vec on every execution".to_string())
            }
            "format" if is_punct(tokens.get(i + 1), '!') => {
                Some("`format!` allocates a String on every execution".to_string())
            }
            "Vec" | "VecDeque" | "Box" if path_call("new") => Some(format!(
                "`{name}::new()` allocates outside arena setup; take the buffer \
                 from SimArena or hoist into a constructor"
            )),
            "to_vec" if method_call => {
                Some("`.to_vec()` copies into a fresh allocation".to_string())
            }
            "clone" if method_call => Some(
                "`.clone()` in a hot module usually deep-copies a collection; \
                 borrow, mem::take, or move instead"
                    .to_string(),
            ),
            _ => None,
        };
        if let Some(msg) = msg {
            if alloc_exempt(items, t.line) {
                continue;
            }
            push(out, allows, Rule::HotPathAlloc, path, t, msg);
        }
    }
}

/// True when `line` sits inside an allocation-exempt scope: the body of an
/// `impl SimArena` (the arena *is* the setup path) or a constructor-shaped
/// fn (`new`, `default`, `with_*`, `from_*` — run once per simulation).
fn alloc_exempt(items: &[Item], line: u32) -> bool {
    enclosing(items, line).iter().any(|it| match it.kind {
        ItemKind::Impl => type_head(&it.name) == "SimArena",
        ItemKind::Fn => {
            it.name == "new"
                || it.name == "default"
                || it.name.starts_with("with_")
                || it.name.starts_with("from_")
        }
        _ => false,
    })
}

/// Rule 6: shard isolation — a cross-file pass over the service crate's
/// library sources.
///
/// Three sub-checks, all static complements of PR 7's dynamic
/// one-thread-per-shard bit-identity proof:
///
/// 1. shared mutable statics (`static mut`, or a static whose type has
///    interior mutability) — process-wide state visible to every shard;
/// 2. `Mutex`/`RwLock` inside any fn reachable from an `estimate` fn via
///    the name-based call graph — locks on the hot path serialise shards;
/// 3. `ServiceShard` field *access* (not method calls) outside
///    `impl ServiceShard` blocks — shard internals go through shard-owned
///    methods so flush-before-estimate cannot be bypassed.
pub fn shard_isolation(files: &[SourceFile]) -> Vec<Violation> {
    let mut out = Vec::new();
    let table = SymbolTable::build(files);

    // 1. Shared mutable statics.
    for file in files.iter() {
        let allows = Allows(
            file.lexed
                .allows
                .iter()
                .map(|a| (a.line, a.rule.clone()))
                .collect(),
        );
        crate::parse::walk_items(&file.items, &mut |item, parent| {
            if item.kind != ItemKind::Static
                || item.is_cfg_test()
                || parent.is_some_and(Item::is_cfg_test)
            {
                return;
            }
            let interior_mut = item.ty.as_deref().is_some_and(|ty| {
                ["Mutex", "RwLock", "RefCell", "Cell", "Atomic"]
                    .iter()
                    .any(|m| ty.contains(m))
            });
            let msg = if item.is_mut_static {
                Some(format!(
                    "`static mut {}` is process-wide mutable state shared across \
                     every shard; move it into ServiceShard",
                    item.name
                ))
            } else if interior_mut {
                Some(format!(
                    "static `{}` has interior mutability ({}); shard state must \
                     be shard-local",
                    item.name,
                    item.ty.as_deref().unwrap_or("")
                ))
            } else {
                None
            };
            if let Some(msg) = msg {
                if !allows.permits(item.line, Rule::ShardIsolation) {
                    out.push(Violation {
                        rule: Rule::ShardIsolation,
                        path: file.path.clone(),
                        line: item.line,
                        col: 1,
                        len: item.name.len().max(1) as u32,
                        msg,
                    });
                }
            }
        });
    }

    // 2. Locks reachable from the hot estimate path.
    let reached = reachable_fns(&table, files, |f| f.name == "estimate");
    for idx in reached {
        let f = &table.fns[idx];
        let file = &files[f.file];
        let Some((start, end)) = f.item.body else {
            continue;
        };
        let allows = Allows(
            file.lexed
                .allows
                .iter()
                .map(|a| (a.line, a.rule.clone()))
                .collect(),
        );
        for t in &file.lexed.tokens[start..end.min(file.lexed.tokens.len())] {
            let Tok::Ident(name) = &t.tok else { continue };
            if name == "Mutex" || name == "RwLock" {
                push(
                    &mut out,
                    &allows,
                    Rule::ShardIsolation,
                    &file.path,
                    t,
                    format!(
                        "`{name}` inside `{fn_name}`, which is reachable from the \
                         hot estimate path; a lock here serialises shards",
                        fn_name = f.name
                    ),
                );
            }
        }
    }

    // 3. ServiceShard field access outside shard-owned methods.
    let Some(shard) = table.types.get("ServiceShard") else {
        return out;
    };
    let fields: std::collections::BTreeSet<&str> =
        shard.item.fields.iter().map(|f| f.name.as_str()).collect();
    for file in files.iter() {
        let mask = test_mask(&file.lexed.tokens);
        let allows = Allows(
            file.lexed
                .allows
                .iter()
                .map(|a| (a.line, a.rule.clone()))
                .collect(),
        );
        let tokens = &file.lexed.tokens;
        for (i, t) in tokens.iter().enumerate() {
            if mask[i] || !matches!(t.tok, Tok::Punct('.')) {
                continue;
            }
            let Some(Token {
                tok: Tok::Ident(field),
                ..
            }) = tokens.get(i + 1)
            else {
                continue;
            };
            if !fields.contains(field.as_str()) || is_punct(tokens.get(i + 2), '(') {
                continue;
            }
            // Receiver heuristic: a nearby identifier mentioning "shard"
            // (`shard.queue`, `self.shards[i].stats`). Method calls were
            // excluded above, so whatever remains is a field access.
            let receiver_is_shard = (1..=6).any(|back| {
                matches!(
                    tokens.get(i.wrapping_sub(back)),
                    Some(Token { tok: Tok::Ident(r), .. }) if r.to_ascii_lowercase().contains("shard")
                )
            });
            if !receiver_is_shard {
                continue;
            }
            let inside_shard_impl = enclosing(&file.items, t.line)
                .iter()
                .any(|it| it.kind == ItemKind::Impl && type_head(&it.name) == "ServiceShard");
            if inside_shard_impl {
                continue;
            }
            let site = &tokens[i + 1];
            push(
                &mut out,
                &allows,
                Rule::ShardIsolation,
                &file.path,
                site,
                format!(
                    "direct access to ServiceShard field `{field}` outside \
                     `impl ServiceShard`; go through a shard method so \
                     flush-before-estimate consistency holds"
                ),
            );
        }
    }
    out
}

/// Extract the method names of a `pub trait <name>` block, with the line of
/// each `fn`. Used by the observer-events rule.
pub fn trait_method_names(src: &str, trait_name: &str) -> Vec<(String, u32)> {
    let lexed = lex(src);
    let tokens = &lexed.tokens;
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if is_ident(tokens.get(i), "trait") && is_ident(tokens.get(i + 1), trait_name) {
            // Find the opening brace, then collect `fn <name>` at depth 1.
            let mut j = i + 2;
            while j < tokens.len() && !is_punct(tokens.get(j), '{') {
                j += 1;
            }
            let mut depth = 0i32;
            while j < tokens.len() {
                match &tokens[j].tok {
                    Tok::Punct('{') => depth += 1,
                    Tok::Punct('}') => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    Tok::Ident(kw) if kw == "fn" && depth == 1 => {
                        if let Some(Token {
                            tok: Tok::Ident(name),
                            line,
                            ..
                        }) = tokens.get(j + 1)
                        {
                            out.push((name.clone(), *line));
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            break;
        }
        i += 1;
    }
    out
}

/// Collect the set of method names invoked as `.name(` in `src`'s non-test
/// code — an emission that only exists inside `#[cfg(test)]` does not count
/// as wiring the event.
pub fn method_call_sites(src: &str) -> std::collections::BTreeSet<String> {
    let lexed = lex(src);
    let tokens = &lexed.tokens;
    let mask = test_mask(tokens);
    let mut out = std::collections::BTreeSet::new();
    for (i, t) in tokens.iter().enumerate() {
        if mask[i] {
            continue;
        }
        if let Tok::Ident(name) = &t.tok {
            if is_punct(tokens.get(i.wrapping_sub(1)), '.') && is_punct(tokens.get(i + 1), '(') {
                out.insert(name.clone());
            }
        }
    }
    out
}
