//! `resmatch-lint` binary: `check`, `baseline`, `schema`, and `explain`
//! subcommands.

use std::path::PathBuf;
use std::process::ExitCode;

use resmatch_lint::rules::Rule;
use resmatch_lint::{baseline, run_check, scan, schema, write_baseline, write_schema};

const USAGE: &str = "\
resmatch-lint — static analysis for the resmatch workspace

USAGE:
    resmatch-lint check    [--root DIR]   # exit 1 on any violation/regression
    resmatch-lint baseline [--root DIR]   # rewrite both ratchet files
    resmatch-lint schema   [--root DIR]   # regenerate snapshot-schema.txt
    resmatch-lint explain  <rule>         # describe one rule

RULES:
    determinism panic-free crate-hygiene float-cmp observer-events
    shard-isolation hot-path-alloc snapshot-schema
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(message) => {
            eprintln!("resmatch-lint: {message}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let mut it = args.iter();
    let Some(cmd) = it.next() else {
        eprint!("{USAGE}");
        return Ok(ExitCode::from(2));
    };
    match cmd.as_str() {
        "check" => {
            let root = parse_root(&mut it)?;
            let outcome = run_check(&root).map_err(|e| e.message)?;
            print!("{}", resmatch_lint::render_outcome(&root, &outcome));
            Ok(if outcome.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            })
        }
        "baseline" => {
            let root = parse_root(&mut it)?;
            let counts = write_baseline(&root).map_err(|e| e.message)?;
            let total: usize = counts.values().sum();
            println!(
                "wrote {} ({} panic site(s) across {} file(s)) and {}",
                baseline::BASELINE_FILE,
                total,
                counts.len(),
                baseline::ALLOC_BASELINE_FILE
            );
            Ok(ExitCode::SUCCESS)
        }
        "schema" => {
            let root = parse_root(&mut it)?;
            match write_schema(&root).map_err(|e| e.message)? {
                Some(content) => {
                    let fingerprint = content
                        .lines()
                        .find_map(|l| l.strip_prefix("fingerprint:"))
                        .unwrap_or("?")
                        .trim();
                    println!("wrote {} (fingerprint {fingerprint})", schema::SCHEMA_FILE);
                    Ok(ExitCode::SUCCESS)
                }
                None => {
                    println!(
                        "no snapshot types in this tree; {} left untouched",
                        schema::SCHEMA_FILE
                    );
                    Ok(ExitCode::SUCCESS)
                }
            }
        }
        "explain" => {
            let Some(id) = it.next() else {
                return Err("explain: missing <rule>".to_string());
            };
            let Some(rule) = Rule::from_id(id) else {
                return Err(format!(
                    "unknown rule {id:?}; expected one of: {}",
                    Rule::all().map(|r| r.id()).join(" ")
                ));
            };
            println!("{}", rule.explain());
            Ok(ExitCode::SUCCESS)
        }
        "--help" | "-h" | "help" => {
            print!("{USAGE}");
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown subcommand {other:?}\n{USAGE}")),
    }
}

/// Parse an optional `--root DIR`; default to discovering the workspace
/// root above the current directory.
fn parse_root(it: &mut std::slice::Iter<'_, String>) -> Result<PathBuf, String> {
    let mut root: Option<PathBuf> = None;
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                let dir = it.next().ok_or("--root: missing DIR")?;
                root = Some(PathBuf::from(dir));
            }
            other => return Err(format!("unexpected argument {other:?}")),
        }
    }
    match root {
        Some(r) => Ok(r),
        None => {
            let cwd = std::env::current_dir().map_err(|e| e.to_string())?;
            scan::find_root(&cwd).ok_or_else(|| {
                format!(
                    "no workspace root (Cargo.toml + crates/) at or above {}",
                    cwd.display()
                )
            })
        }
    }
}
