//! Snapshot wire-schema fingerprinting for the `snapshot-schema` rule.
//!
//! PR 7's `RSNP` snapshot file is a *schema-static* binary format: the
//! codec derives field order from struct declaration order, so silently
//! reordering, renaming, retyping, adding, or removing a field on any
//! struct reachable from `SnapshotDocument` changes the wire bytes
//! without tripping a single compile error. This module makes that drift
//! a CI-visible event: it computes the transitive type closure of the
//! snapshot document (struct fields and enum variants, in declaration
//! order, with canonical type text), renders it as a human-reviewable
//! listing, hashes the listing with FNV-1a 64 (the workspace's pinned
//! deterministic hash), and compares against the committed
//! `snapshot-schema.txt`.
//!
//! Gate semantics, designed so an *intentional* format change is exactly
//! two explicit edits in one PR:
//!
//! - fingerprint drifted, `FORMAT_VERSION` unchanged → **violation**
//!   (silent wire break);
//! - fingerprint drifted, `FORMAT_VERSION` bumped → note only; the CI
//!   `git diff` gate then forces the regenerated fingerprint file into
//!   the same change;
//! - committed fingerprint file missing while the service crate is in
//!   the tree → **violation** (run `resmatch-lint schema`).

use crate::parse::ItemKind;
use crate::rules::{Rule, Violation};
use crate::symbols::{SourceFile, SymbolTable};

/// Committed fingerprint file, at the workspace root (next to the panic
/// baseline).
pub const SCHEMA_FILE: &str = "snapshot-schema.txt";

/// The root of the wire-format type closure.
pub const ROOT_TYPE: &str = "SnapshotDocument";

/// The snapshot version constant that must be bumped on drift.
pub const VERSION_CONST: &str = "FORMAT_VERSION";

/// FNV-1a 64 — the same deterministic hash family the engine pins its
/// golden results with.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Outcome of the schema gate: hard violations plus advisory notes.
#[derive(Debug, Default)]
pub struct SchemaCheck {
    /// Violations (fail `check`).
    pub violations: Vec<Violation>,
    /// Advisory notes (rendered, but never fail the build).
    pub notes: Vec<String>,
}

/// Render the canonical schema listing over the type closure of
/// [`ROOT_TYPE`], plus its fingerprint. Returns `None` when the root type
/// is not in the file set (synthetic test workspaces without the service
/// crate skip the rule entirely).
pub fn closure_listing(files: &[SourceFile]) -> Option<(String, u64)> {
    let table = SymbolTable::build(files);
    table.types.get(ROOT_TYPE)?;

    // Breadth-first closure over type names referenced from fields and
    // variant payloads.
    let mut order: Vec<&str> = vec![ROOT_TYPE];
    let mut seen = std::collections::BTreeSet::from([ROOT_TYPE.to_string()]);
    let mut cursor = 0usize;
    while cursor < order.len() {
        let sym = &table.types[order[cursor]];
        cursor += 1;
        let mut referenced = Vec::new();
        for f in &sym.item.fields {
            referenced.push(f.ty.clone());
        }
        for v in &sym.item.variants {
            for f in &v.fields {
                referenced.push(f.ty.clone());
            }
        }
        for ty in referenced {
            for name in path_idents(&ty) {
                if table.types.contains_key(name) && seen.insert(name.to_string()) {
                    // Borrow the key back out of the table so the lifetime
                    // outlives this loop's local `ty`.
                    if let Some((key, _)) = table.types.get_key_value(name) {
                        order.push(key);
                    }
                }
            }
        }
    }
    order.sort_unstable();

    let mut listing = String::new();
    for name in order {
        let sym = &table.types[name];
        let kw = if sym.item.kind == ItemKind::Enum {
            "enum"
        } else {
            "struct"
        };
        listing.push_str(&format!("{kw} {name} ({})\n", files[sym.file].path));
        for f in &sym.item.fields {
            listing.push_str(&format!("  {}: {}\n", f.name, f.ty));
        }
        for v in &sym.item.variants {
            listing.push_str(&format!("  {}\n", render_variant(v)));
        }
    }
    let fingerprint = fnv1a64(listing.as_bytes());
    Some((listing, fingerprint))
}

fn render_variant(v: &crate::parse::Variant) -> String {
    if v.fields.is_empty() {
        return v.name.clone();
    }
    let tuple = v.fields.first().is_some_and(|f| f.name == "0");
    if tuple {
        let tys: Vec<&str> = v.fields.iter().map(|f| f.ty.as_str()).collect();
        format!("{}({})", v.name, tys.join(", "))
    } else {
        let fs: Vec<String> = v
            .fields
            .iter()
            .map(|f| format!("{}: {}", f.name, f.ty))
            .collect();
        format!("{} {{ {} }}", v.name, fs.join(", "))
    }
}

/// Identifier-ish segments of a canonical type text:
/// `Vec<resmatch_core::snapshot::SnapshotState>` → `Vec`, `resmatch_core`,
/// `snapshot`, `SnapshotState`.
fn path_idents(ty: &str) -> impl Iterator<Item = &str> {
    ty.split(|c: char| !c.is_ascii_alphanumeric() && c != '_')
        .filter(|s| !s.is_empty())
}

/// The current `FORMAT_VERSION` value and where it is declared:
/// `(version, path, line)`. `None` when no service crate is present or
/// the constant's initialiser is not a plain integer literal.
pub fn current_version(files: &[SourceFile]) -> Option<(u32, String, u32)> {
    let table = SymbolTable::build(files);
    let sym = table.consts.get(VERSION_CONST)?;
    let init = sym.item.init.as_deref()?;
    let version: u32 = init.trim().replace('_', "").parse().ok()?;
    Some((version, files[sym.file].path.clone(), sym.item.line))
}

/// Render the committed fingerprint file's full content.
pub fn render_file(version: u32, fingerprint: u64, listing: &str) -> String {
    format!(
        "# resmatch snapshot wire schema — the field names, types, and order of every\n\
         # type reachable from SnapshotDocument through the RSNP codec.\n\
         # Generated by `cargo run -p resmatch-lint -- schema`; verified by `check`.\n\
         # Any listing change is wire-format drift: bump FORMAT_VERSION in\n\
         # crates/service/src/file.rs and regenerate this file in the same change.\n\
         format-version: {version}\n\
         fingerprint: {fingerprint:#018x}\n\
         \n\
         {listing}"
    )
}

/// Parse `(version, fingerprint)` out of a committed fingerprint file.
pub fn parse_file(text: &str) -> Option<(u32, u64)> {
    let mut version = None;
    let mut fingerprint = None;
    for line in text.lines() {
        if let Some(v) = line.strip_prefix("format-version:") {
            version = v.trim().parse::<u32>().ok();
        } else if let Some(f) = line.strip_prefix("fingerprint:") {
            let f = f.trim().trim_start_matches("0x");
            fingerprint = u64::from_str_radix(f, 16).ok();
        }
    }
    Some((version?, fingerprint?))
}

/// Generate the full fingerprint-file content for the current tree, or
/// `None` when the tree has no snapshot types to fingerprint.
pub fn generate(files: &[SourceFile]) -> Option<String> {
    let (listing, fingerprint) = closure_listing(files)?;
    let version = current_version(files).map_or(0, |(v, _, _)| v);
    Some(render_file(version, fingerprint, &listing))
}

/// Run the schema gate: compare the current closure against the committed
/// fingerprint file. `committed` is the file's content if it exists.
pub fn check(files: &[SourceFile], committed: Option<&str>) -> SchemaCheck {
    let mut out = SchemaCheck::default();
    let Some((_, fingerprint)) = closure_listing(files) else {
        return out; // no snapshot types in this tree — rule does not apply
    };
    let Some((version, version_path, version_line)) = current_version(files) else {
        out.violations.push(Violation {
            rule: Rule::SnapshotSchema,
            path: "crates/service/src/file.rs".to_string(),
            line: 1,
            col: 1,
            len: 1,
            msg: format!(
                "snapshot types exist but no `{VERSION_CONST}: u32` constant with a \
                 literal initialiser was found to version them"
            ),
        });
        return out;
    };
    let Some(committed) = committed else {
        out.violations.push(Violation {
            rule: Rule::SnapshotSchema,
            path: SCHEMA_FILE.to_string(),
            line: 1,
            col: 1,
            len: 1,
            msg: format!(
                "committed schema fingerprint is missing; run \
                 `cargo run -p resmatch-lint -- schema` and commit {SCHEMA_FILE}"
            ),
        });
        return out;
    };
    let Some((committed_version, committed_fingerprint)) = parse_file(committed) else {
        out.violations.push(Violation {
            rule: Rule::SnapshotSchema,
            path: SCHEMA_FILE.to_string(),
            line: 1,
            col: 1,
            len: 1,
            msg: format!(
                "{SCHEMA_FILE} is corrupt (missing format-version/fingerprint \
                 lines); regenerate with `cargo run -p resmatch-lint -- schema`"
            ),
        });
        return out;
    };

    if fingerprint != committed_fingerprint {
        if version == committed_version {
            out.violations.push(Violation {
                rule: Rule::SnapshotSchema,
                path: version_path,
                line: version_line,
                col: 1,
                len: 1,
                msg: format!(
                    "snapshot wire schema drifted (fingerprint {fingerprint:#018x}, \
                     committed {committed_fingerprint:#018x}) without a \
                     {VERSION_CONST} bump — old snapshot files would be misread; \
                     bump the constant and regenerate {SCHEMA_FILE}"
                ),
            });
        } else {
            out.notes.push(format!(
                "snapshot schema changed with a {VERSION_CONST} bump \
                 ({committed_version} -> {version}); regenerate {SCHEMA_FILE} with \
                 `cargo run -p resmatch-lint -- schema` to commit the new fingerprint"
            ));
        }
    } else if version != committed_version {
        out.notes.push(format!(
            "{VERSION_CONST} is {version} but {SCHEMA_FILE} records \
             {committed_version}; regenerate the fingerprint file"
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn service_files(version: &str, estimate_ty: &str) -> Vec<SourceFile> {
        vec![
            SourceFile::parse(
                "crates/service/src/file.rs".to_string(),
                format!(
                    "pub const FORMAT_VERSION: u32 = {version};\n\
                     pub struct SnapshotDocument {{\n\
                     \x20   pub estimator: String,\n\
                     \x20   pub state: SnapshotState,\n\
                     }}\n"
                ),
            ),
            SourceFile::parse(
                "crates/core/src/snapshot.rs".to_string(),
                format!(
                    "pub enum SnapshotState {{\n\
                     \x20   SuccessiveV1 {{ groups: Vec<PersistedGroup> }},\n\
                     }}\n\
                     pub struct PersistedGroup {{\n\
                     \x20   pub estimate_kb: {estimate_ty},\n\
                     }}\n"
                ),
            ),
        ]
    }

    #[test]
    fn closure_walks_fields_and_variants() {
        let files = service_files("1", "f64");
        let (listing, _) = closure_listing(&files).expect("root present");
        assert!(listing.contains("struct SnapshotDocument"));
        assert!(listing.contains("enum SnapshotState"));
        assert!(listing.contains("SuccessiveV1 { groups: Vec<PersistedGroup> }"));
        assert!(listing.contains("estimate_kb: f64"));
    }

    #[test]
    fn fingerprint_is_sensitive_to_field_type_changes() {
        let (_, a) = closure_listing(&service_files("1", "f64")).expect("a");
        let (_, b) = closure_listing(&service_files("1", "f32")).expect("b");
        assert_ne!(a, b);
    }

    #[test]
    fn render_parse_round_trip() {
        let text = render_file(3, 0x1234_5678_9abc_def0, "struct X (a.rs)\n  f: u32\n");
        assert_eq!(parse_file(&text), Some((3, 0x1234_5678_9abc_def0)));
    }

    #[test]
    fn drift_without_bump_is_a_violation() {
        let committed = generate(&service_files("1", "f64")).expect("generate");
        let drifted = service_files("1", "f32");
        let result = check(&drifted, Some(&committed));
        assert_eq!(result.violations.len(), 1, "{:?}", result.violations);
        assert!(result.violations[0]
            .msg
            .contains("without a FORMAT_VERSION bump"));
    }

    #[test]
    fn drift_with_bump_is_only_a_note() {
        let committed = generate(&service_files("1", "f64")).expect("generate");
        let drifted_and_bumped = service_files("2", "f32");
        let result = check(&drifted_and_bumped, Some(&committed));
        assert!(result.violations.is_empty(), "{:?}", result.violations);
        assert_eq!(result.notes.len(), 1);
    }

    #[test]
    fn missing_fingerprint_file_is_a_violation() {
        let files = service_files("1", "f64");
        let result = check(&files, None);
        assert_eq!(result.violations.len(), 1);
        assert!(result.violations[0].msg.contains("missing"));
    }

    #[test]
    fn trees_without_snapshot_types_skip_the_rule() {
        let files = vec![SourceFile::parse(
            "crates/sim/src/engine.rs".to_string(),
            "pub struct Engine { x: u32 }\n".to_string(),
        )];
        let result = check(&files, None);
        assert!(result.violations.is_empty());
        assert!(generate(&files).is_none());
    }

    #[test]
    fn matching_schema_is_clean() {
        let files = service_files("1", "f64");
        let committed = generate(&files).expect("generate");
        let result = check(&files, Some(&committed));
        assert!(result.violations.is_empty());
        assert!(result.notes.is_empty());
    }
}
