//! `resmatch-lint` — in-repo static analysis enforcing the workspace's
//! correctness invariants.
//!
//! The paper's figures (5–8) only reproduce if the simulator is
//! bit-deterministic under a fixed seed, and the golden tests only prove
//! that for the tree they run on. This crate is the *preventive* layer: a
//! token-level Rust source scanner (std-only — the container is offline)
//! that walks the workspace and machine-checks the invariants every future
//! PR must preserve:
//!
//! | rule | enforces |
//! |------|----------|
//! | `determinism` | no nondeterministic hashers, clocks, thread ids, or env reads in `sim`/`core`/`cluster` library code |
//! | `panic-free` | no `unwrap`/undocumented `expect`/`panic!`/literal indexing in engine code, ratcheted down by `lint-baseline.txt` |
//! | `crate-hygiene` | every crate root forbids `unsafe_code`; public-API crates (`sim`, `core`, `workload`, `cluster`, `stats`, `repro`) deny `missing_docs` |
//! | `float-cmp` | no exact `==`/`!=` against float literals outside `resmatch-stats` |
//! | `observer-events` | every `SimObserver`/`SweepObserver` method has a live emission site |
//!
//! Run it as a binary:
//!
//! ```text
//! cargo run -p resmatch-lint -- check          # CI mode: nonzero exit on violations
//! cargo run -p resmatch-lint -- baseline       # rewrite the panic-free ratchet
//! cargo run -p resmatch-lint -- explain panic-free
//! ```
//!
//! or drive [`run_check`]/[`write_baseline`] from tests. Diagnostics are
//! rustc-style `file:line:col` with caret underlining ([`diag`]). A site
//! that must stand (e.g. observability wall-clock accounting) is suppressed
//! with `// lint: allow(<rule>): <reason>` on the same or preceding line.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![deny(clippy::unwrap_used)]

pub mod baseline;
pub mod diag;
pub mod lexer;
pub mod rules;
pub mod scan;

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::path::Path;

use rules::Violation;

/// Failure of a lint run itself (I/O, corrupt baseline) — distinct from
/// "the tree has violations", which [`CheckOutcome`] reports.
#[derive(Debug)]
pub struct LintError {
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for LintError {}

impl From<std::io::Error> for LintError {
    fn from(e: std::io::Error) -> Self {
        LintError {
            message: format!("i/o error: {e}"),
        }
    }
}

/// Everything `check` decided, ready for rendering and exit-code logic.
#[derive(Debug, Default)]
pub struct CheckOutcome {
    /// Hard violations (every rule but `panic-free`).
    pub violations: Vec<Violation>,
    /// `panic-free` sites in files that regressed past the baseline.
    pub panic_regressions: Vec<Violation>,
    /// `(path, current, baseline)` for each regressed file.
    pub regressed_files: Vec<(String, usize, usize)>,
    /// `(path, current, baseline)` for files now under their baseline.
    pub stale_baseline: Vec<(String, usize, usize)>,
    /// Total `panic-free` sites in the tree.
    pub panic_total: usize,
    /// Total allowed by the baseline.
    pub baseline_total: usize,
}

impl CheckOutcome {
    /// True when `check` should exit zero.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && self.regressed_files.is_empty()
    }
}

/// Run the full `check` over the workspace at `root`.
pub fn run_check(root: &Path) -> Result<CheckOutcome, LintError> {
    let report = scan::scan_workspace(root)?;
    let current = report.panic_counts();
    let baseline_path = root.join(baseline::BASELINE_FILE);
    let baseline: BTreeMap<String, usize> = if baseline_path.is_file() {
        baseline::parse(&fs::read_to_string(&baseline_path)?)
            .map_err(|message| LintError { message })?
    } else {
        BTreeMap::new()
    };
    let cmp = baseline::compare(&current, &baseline);
    let regressed: BTreeMap<&String, usize> =
        cmp.regressions.iter().map(|(p, _, b)| (p, *b)).collect();
    let panic_regressions = report
        .panic_sites
        .iter()
        .filter(|v| regressed.contains_key(&v.path))
        .cloned()
        .collect();
    Ok(CheckOutcome {
        violations: report.violations,
        panic_regressions,
        regressed_files: cmp.regressions,
        stale_baseline: cmp.improvements,
        panic_total: current.values().sum(),
        baseline_total: baseline.values().sum(),
    })
}

/// Regenerate the baseline ratchet from the current tree. Returns the new
/// per-file counts.
pub fn write_baseline(root: &Path) -> Result<BTreeMap<String, usize>, LintError> {
    let report = scan::scan_workspace(root)?;
    let counts = report.panic_counts();
    fs::write(
        root.join(baseline::BASELINE_FILE),
        baseline::render(&counts),
    )?;
    Ok(counts)
}

/// Render a check outcome as human-readable text (diagnostics with source
/// excerpts, then a summary). `root` is used to re-read source lines.
pub fn render_outcome(root: &Path, outcome: &CheckOutcome) -> String {
    let mut out = String::new();
    let mut sources: BTreeMap<String, String> = BTreeMap::new();
    let mut emit = |out: &mut String, v: &Violation| {
        let src = sources
            .entry(v.path.clone())
            .or_insert_with(|| fs::read_to_string(root.join(&v.path)).unwrap_or_default());
        out.push_str(&diag::render(v, diag::line_of(src, v.line)));
        out.push('\n');
    };
    for v in &outcome.violations {
        emit(&mut out, v);
    }
    for v in &outcome.panic_regressions {
        emit(&mut out, v);
    }
    for (path, cur, base) in &outcome.regressed_files {
        out.push_str(&format!(
            "error[panic-free]: {path} has {cur} panic site(s), baseline allows {base}; \
             burn the new site(s) down (the ratchet only goes down)\n"
        ));
    }
    for (path, cur, base) in &outcome.stale_baseline {
        out.push_str(&format!(
            "note: {path} improved to {cur} panic site(s) (baseline {base}); run \
             `cargo run -p resmatch-lint -- baseline` to lock it in\n"
        ));
    }
    if outcome.is_clean() {
        out.push_str(&format!(
            "lint clean: {} panic site(s) tracked (baseline {})\n",
            outcome.panic_total, outcome.baseline_total
        ));
    } else {
        let n = outcome.violations.len()
            + outcome.panic_regressions.len()
            + outcome.regressed_files.len();
        out.push_str(&format!("lint failed: {n} error(s)\n"));
    }
    out
}
