//! `resmatch-lint` — in-repo static analysis enforcing the workspace's
//! correctness invariants.
//!
//! The paper's figures (5–8) only reproduce if the simulator is
//! bit-deterministic under a fixed seed, and the golden tests only prove
//! that for the tree they run on. This crate is the *preventive* layer: a
//! syntax-aware Rust source analyzer (std-only — the container is offline)
//! built as a hand-rolled lexer ([`lexer`]), a recursive-descent item
//! parser ([`parse`]), and a cross-file symbol pass ([`symbols`]), that
//! walks the workspace and machine-checks the invariants every future PR
//! must preserve:
//!
//! | rule | enforces |
//! |------|----------|
//! | `determinism` | no nondeterministic hashers, clocks, thread ids, or env reads in `sim`/`core`/`cluster`/`service`/`classad` library code |
//! | `panic-free` | no `unwrap`/undocumented `expect`/`panic!`/literal indexing in engine code, ratcheted down by `lint-baseline.txt` |
//! | `crate-hygiene` | every crate root forbids `unsafe_code`; public-API crates (`sim`, `core`, `workload`, `cluster`, `stats`, `repro`, `service`, `classad`) deny `missing_docs` |
//! | `float-cmp` | no exact `==`/`!=` against float literals outside `resmatch-stats` and the ClassAd numeric evaluator |
//! | `observer-events` | every `SimObserver`/`SweepObserver` method has a live emission site |
//! | `shard-isolation` | no shared mutable statics, no locks reachable from the service's hot estimate path, no `ServiceShard` field access outside shard-owned methods |
//! | `hot-path-alloc` | no allocating constructs in the engine's hot modules outside arena/constructor setup, ratcheted down by `lint-alloc-baseline.txt` |
//! | `snapshot-schema` | the `RSNP` wire schema only changes together with a `FORMAT_VERSION` bump and a regenerated `snapshot-schema.txt` fingerprint |
//!
//! Run it as a binary:
//!
//! ```text
//! cargo run -p resmatch-lint -- check          # CI mode: nonzero exit on violations
//! cargo run -p resmatch-lint -- baseline       # rewrite both ratchet files
//! cargo run -p resmatch-lint -- schema         # regenerate snapshot-schema.txt
//! cargo run -p resmatch-lint -- explain panic-free
//! ```
//!
//! or drive [`run_check`]/[`write_baseline`]/[`write_schema`] from tests.
//! Diagnostics are rustc-style `file:line:col` with caret underlining
//! ([`diag`]). A site that must stand (e.g. observability wall-clock
//! accounting) is suppressed with `// lint: allow(<rule>): <reason>` on
//! the same or preceding line.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![deny(clippy::unwrap_used)]

pub mod baseline;
pub mod diag;
pub mod lexer;
pub mod parse;
pub mod rules;
pub mod scan;
pub mod schema;
pub mod symbols;

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::path::Path;

use rules::Violation;

/// Failure of a lint run itself (I/O, corrupt baseline) — distinct from
/// "the tree has violations", which [`CheckOutcome`] reports.
#[derive(Debug)]
pub struct LintError {
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for LintError {}

impl From<std::io::Error> for LintError {
    fn from(e: std::io::Error) -> Self {
        LintError {
            message: format!("i/o error: {e}"),
        }
    }
}

/// Everything `check` decided, ready for rendering and exit-code logic.
#[derive(Debug, Default)]
pub struct CheckOutcome {
    /// Hard violations (every rule but the two ratcheted ones).
    pub violations: Vec<Violation>,
    /// `panic-free` sites in files that regressed past the baseline.
    pub panic_regressions: Vec<Violation>,
    /// `(path, current, baseline)` for each regressed file.
    pub regressed_files: Vec<(String, usize, usize)>,
    /// `(path, current, baseline)` for files now under their baseline.
    pub stale_baseline: Vec<(String, usize, usize)>,
    /// Total `panic-free` sites in the tree.
    pub panic_total: usize,
    /// Total allowed by the baseline.
    pub baseline_total: usize,
    /// `hot-path-alloc` sites in files that regressed past their baseline.
    pub alloc_regressions: Vec<Violation>,
    /// `(path, current, baseline)` for each alloc-regressed file.
    pub alloc_regressed_files: Vec<(String, usize, usize)>,
    /// `(path, current, baseline)` for files under their alloc baseline.
    pub alloc_stale_baseline: Vec<(String, usize, usize)>,
    /// Total `hot-path-alloc` sites in the tree.
    pub alloc_total: usize,
    /// Total allowed by the alloc baseline.
    pub alloc_baseline_total: usize,
    /// Advisory notes (schema gate bookkeeping); never fail the build.
    pub notes: Vec<String>,
}

impl CheckOutcome {
    /// True when `check` should exit zero.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
            && self.regressed_files.is_empty()
            && self.alloc_regressed_files.is_empty()
    }
}

/// Load one ratchet file (empty when absent) and compare current counts
/// against it, splitting the matching sites out of `sites`.
fn ratchet(
    root: &Path,
    file_name: &str,
    current: &BTreeMap<String, usize>,
    sites: &[Violation],
) -> Result<(Vec<Violation>, baseline::Comparison, usize), LintError> {
    let path = root.join(file_name);
    let base: BTreeMap<String, usize> = if path.is_file() {
        baseline::parse(&fs::read_to_string(&path)?).map_err(|message| LintError { message })?
    } else {
        BTreeMap::new()
    };
    let cmp = baseline::compare(current, &base);
    let regressed: BTreeMap<&String, usize> =
        cmp.regressions.iter().map(|(p, _, b)| (p, *b)).collect();
    let regressions = sites
        .iter()
        .filter(|v| regressed.contains_key(&v.path))
        .cloned()
        .collect();
    Ok((regressions, cmp, base.values().sum()))
}

/// Run the full `check` over the workspace at `root`.
pub fn run_check(root: &Path) -> Result<CheckOutcome, LintError> {
    let report = scan::scan_workspace(root)?;
    let panic_current = report.panic_counts();
    let alloc_current = report.alloc_counts();
    let (panic_regressions, panic_cmp, baseline_total) = ratchet(
        root,
        baseline::BASELINE_FILE,
        &panic_current,
        &report.panic_sites,
    )?;
    let (alloc_regressions, alloc_cmp, alloc_baseline_total) = ratchet(
        root,
        baseline::ALLOC_BASELINE_FILE,
        &alloc_current,
        &report.alloc_sites,
    )?;
    Ok(CheckOutcome {
        violations: report.violations,
        panic_regressions,
        regressed_files: panic_cmp.regressions,
        stale_baseline: panic_cmp.improvements,
        panic_total: panic_current.values().sum(),
        baseline_total,
        alloc_regressions,
        alloc_regressed_files: alloc_cmp.regressions,
        alloc_stale_baseline: alloc_cmp.improvements,
        alloc_total: alloc_current.values().sum(),
        alloc_baseline_total,
        notes: report.notes,
    })
}

/// Regenerate both baseline ratchets from the current tree. Returns the
/// new per-file `panic-free` counts.
pub fn write_baseline(root: &Path) -> Result<BTreeMap<String, usize>, LintError> {
    let report = scan::scan_workspace(root)?;
    let counts = report.panic_counts();
    fs::write(
        root.join(baseline::BASELINE_FILE),
        baseline::render(&counts),
    )?;
    fs::write(
        root.join(baseline::ALLOC_BASELINE_FILE),
        baseline::render_for("hot-path-alloc", &report.alloc_counts()),
    )?;
    Ok(counts)
}

/// Regenerate the committed snapshot-schema fingerprint file. Returns the
/// file's content, or `None` when the tree has no snapshot types (the file
/// is then left untouched).
pub fn write_schema(root: &Path) -> Result<Option<String>, LintError> {
    let files = scan::snapshot_source_files(root)?;
    let Some(content) = schema::generate(&files) else {
        return Ok(None);
    };
    fs::write(root.join(schema::SCHEMA_FILE), &content)?;
    Ok(Some(content))
}

/// Render a check outcome as human-readable text (diagnostics with source
/// excerpts, then a summary). `root` is used to re-read source lines.
pub fn render_outcome(root: &Path, outcome: &CheckOutcome) -> String {
    let mut out = String::new();
    let mut sources: BTreeMap<String, String> = BTreeMap::new();
    let mut emit = |out: &mut String, v: &Violation| {
        let src = sources
            .entry(v.path.clone())
            .or_insert_with(|| fs::read_to_string(root.join(&v.path)).unwrap_or_default());
        out.push_str(&diag::render(v, diag::line_of(src, v.line)));
        out.push('\n');
    };
    for v in &outcome.violations {
        emit(&mut out, v);
    }
    for v in &outcome.panic_regressions {
        emit(&mut out, v);
    }
    for v in &outcome.alloc_regressions {
        emit(&mut out, v);
    }
    for (path, cur, base) in &outcome.regressed_files {
        out.push_str(&format!(
            "error[panic-free]: {path} has {cur} panic site(s), baseline allows {base}; \
             burn the new site(s) down (the ratchet only goes down)\n"
        ));
    }
    for (path, cur, base) in &outcome.alloc_regressed_files {
        out.push_str(&format!(
            "error[hot-path-alloc]: {path} has {cur} allocation site(s), baseline \
             allows {base}; hoist the allocation into SimArena or a constructor \
             (the ratchet only goes down)\n"
        ));
    }
    for (path, cur, base) in &outcome.stale_baseline {
        out.push_str(&format!(
            "note: {path} improved to {cur} panic site(s) (baseline {base}); run \
             `cargo run -p resmatch-lint -- baseline` to lock it in\n"
        ));
    }
    for (path, cur, base) in &outcome.alloc_stale_baseline {
        out.push_str(&format!(
            "note: {path} improved to {cur} allocation site(s) (baseline {base}); run \
             `cargo run -p resmatch-lint -- baseline` to lock it in\n"
        ));
    }
    for note in &outcome.notes {
        out.push_str(&format!("note: {note}\n"));
    }
    if outcome.is_clean() {
        out.push_str(&format!(
            "lint clean: {} panic site(s) tracked (baseline {}), {} hot-path \
             allocation site(s) tracked (baseline {})\n",
            outcome.panic_total,
            outcome.baseline_total,
            outcome.alloc_total,
            outcome.alloc_baseline_total
        ));
    } else {
        let n = outcome.violations.len()
            + outcome.panic_regressions.len()
            + outcome.regressed_files.len()
            + outcome.alloc_regressions.len()
            + outcome.alloc_regressed_files.len();
        out.push_str(&format!("lint failed: {n} error(s)\n"));
    }
    out
}
