//! The ratchet files: checked-in per-file site counts that may only
//! decrease.
//!
//! Two rules are ratcheted rather than hard-failed: `panic-free`
//! (`lint-baseline.txt`) and `hot-path-alloc` (`lint-alloc-baseline.txt`).
//! `resmatch-lint check` compares the current tree against these files and
//! fails on any file whose count *grew*; `resmatch-lint baseline` rewrites
//! both after a burn-down. They live at the workspace root so diffs to
//! them are conspicuous in review.

use std::collections::BTreeMap;

/// Panic-free baseline file name, relative to the workspace root.
pub const BASELINE_FILE: &str = "lint-baseline.txt";

/// Hot-path-alloc baseline file name, relative to the workspace root.
pub const ALLOC_BASELINE_FILE: &str = "lint-alloc-baseline.txt";

/// Render per-file counts as a ratchet file's content; `rule` names the
/// ratcheted rule in the header.
pub fn render_for(rule: &str, counts: &BTreeMap<String, usize>) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "# resmatch-lint {rule} baseline.\n\
         # One line per file: `<path> <site count>`. Counts may only ratchet\n\
         # down; regenerate after a burn-down with:\n\
         #     cargo run -p resmatch-lint -- baseline\n",
    ));
    let total: usize = counts.values().sum();
    out.push_str(&format!("# total: {total}\n"));
    for (path, count) in counts {
        if *count > 0 {
            out.push_str(&format!("{path} {count}\n"));
        }
    }
    out
}

/// Render per-file counts as the panic-free baseline's content.
pub fn render(counts: &BTreeMap<String, usize>) -> String {
    render_for("panic-free", counts)
}

/// Parse a baseline file. Unknown lines fail loudly — a corrupted ratchet
/// must not silently become an empty (maximally strict) one, or CI noise
/// would train people to regenerate without looking.
pub fn parse(text: &str) -> Result<BTreeMap<String, usize>, String> {
    let mut out = BTreeMap::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(path), Some(count), None) = (parts.next(), parts.next(), parts.next()) else {
            return Err(format!(
                "baseline line {}: expected `<path> <count>`, got {line:?}",
                i + 1
            ));
        };
        let count: usize = count
            .parse()
            .map_err(|_| format!("baseline line {}: bad count in {line:?}", i + 1))?;
        out.insert(path.to_string(), count);
    }
    Ok(out)
}

/// Outcome of comparing current counts against the baseline.
#[derive(Debug, Default)]
pub struct Comparison {
    /// Files whose count grew: `(path, current, baseline)`.
    pub regressions: Vec<(String, usize, usize)>,
    /// Files whose count shrank (baseline is stale and can be tightened).
    pub improvements: Vec<(String, usize, usize)>,
}

/// Compare current per-file counts against the baseline ratchet.
pub fn compare(
    current: &BTreeMap<String, usize>,
    baseline: &BTreeMap<String, usize>,
) -> Comparison {
    let mut cmp = Comparison::default();
    for (path, &cur) in current {
        let base = baseline.get(path).copied().unwrap_or(0);
        if cur > base {
            cmp.regressions.push((path.clone(), cur, base));
        } else if cur < base {
            cmp.improvements.push((path.clone(), cur, base));
        }
    }
    for (path, &base) in baseline {
        if base > 0 && !current.contains_key(path) {
            cmp.improvements.push((path.clone(), 0, base));
        }
    }
    cmp
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts(pairs: &[(&str, usize)]) -> BTreeMap<String, usize> {
        pairs.iter().map(|(p, c)| (p.to_string(), *c)).collect()
    }

    #[test]
    fn round_trips() {
        let c = counts(&[("a/b.rs", 3), ("c.rs", 1)]);
        let parsed = parse(&render(&c)).expect("render output parses");
        assert_eq!(parsed, c);
    }

    #[test]
    fn zero_counts_are_omitted() {
        let c = counts(&[("a.rs", 0), ("b.rs", 2)]);
        let parsed = parse(&render(&c)).expect("render output parses");
        assert_eq!(parsed, counts(&[("b.rs", 2)]));
    }

    #[test]
    fn corrupt_lines_are_rejected() {
        assert!(parse("a.rs two").is_err());
        assert!(parse("a.rs 1 extra").is_err());
        assert_eq!(parse("# comment\n\n a.rs 4 ").expect("parses").len(), 1);
    }

    #[test]
    fn comparison_classifies() {
        let cur = counts(&[("up.rs", 3), ("down.rs", 1), ("same.rs", 2)]);
        let base = counts(&[("up.rs", 1), ("down.rs", 4), ("same.rs", 2), ("gone.rs", 5)]);
        let cmp = compare(&cur, &base);
        assert_eq!(cmp.regressions, vec![("up.rs".to_string(), 3, 1)]);
        assert_eq!(
            cmp.improvements,
            vec![("down.rs".to_string(), 1, 4), ("gone.rs".to_string(), 0, 5)]
        );
    }
}
