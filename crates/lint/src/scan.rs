//! Workspace walker: classifies source files, runs per-file rules, and
//! evaluates the cross-file observer-events rule.
//!
//! Scope decisions live here, not in the rules:
//!
//! - `crates/*/src/**/*.rs` is library code ([`FileKind::Lib`]), except
//!   `src/main.rs` and `src/bin/**` which are binaries;
//! - `crates/*/tests|benches|examples` are exempt from content rules and
//!   not walked at all;
//! - the root facade crate's `src/lib.rs` is scanned as crate `resmatch`;
//! - `vendor/` (offline dependency stand-ins) and `target/` are never
//!   scanned — they are not this workspace's code.

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::rules::{
    check_file, method_call_sites, shard_isolation, trait_method_names, FileClass, FileKind, Rule,
    Violation,
};
use crate::schema;
use crate::symbols::SourceFile;

/// Crates whose library sources are retained (lexed + parsed) for the
/// cross-file passes: shard-isolation reads `service`, snapshot-schema
/// reads `service` + `core` (the persisted state types live in core).
const RETAINED_CRATES: [&str; 2] = ["service", "core"];

/// Result of scanning the whole workspace.
#[derive(Default)]
pub struct ScanReport {
    /// Violations of every rule except the ratcheted ones: always fatal in
    /// `check`.
    pub violations: Vec<Violation>,
    /// `panic-free` sites: compared against the baseline ratchet.
    pub panic_sites: Vec<Violation>,
    /// `hot-path-alloc` sites: compared against the alloc ratchet.
    pub alloc_sites: Vec<Violation>,
    /// Advisory notes from the schema gate (never fail the build).
    pub notes: Vec<String>,
}

impl ScanReport {
    /// Per-file `panic-free` site counts, keyed by workspace-relative path.
    pub fn panic_counts(&self) -> BTreeMap<String, usize> {
        Self::counts(&self.panic_sites)
    }

    /// Per-file `hot-path-alloc` site counts.
    pub fn alloc_counts(&self) -> BTreeMap<String, usize> {
        Self::counts(&self.alloc_sites)
    }

    fn counts(sites: &[Violation]) -> BTreeMap<String, usize> {
        let mut counts = BTreeMap::new();
        for v in sites {
            *counts.entry(v.path.clone()).or_insert(0usize) += 1;
        }
        counts
    }
}

/// Walk the workspace at `root` and run every rule.
pub fn scan_workspace(root: &Path) -> io::Result<ScanReport> {
    let mut report = ScanReport::default();
    let mut files = collect_sources(root)?;
    files.sort_by(|a, b| a.0.cmp(&b.0));

    let mut retained: Vec<SourceFile> = Vec::new();
    for (rel, class) in &files {
        let src = fs::read_to_string(root.join(rel))?;
        for v in check_file(rel, &src, class) {
            match v.rule {
                Rule::PanicFree => report.panic_sites.push(v),
                Rule::HotPathAlloc => report.alloc_sites.push(v),
                _ => report.violations.push(v),
            }
        }
        if class.kind == FileKind::Lib && RETAINED_CRATES.contains(&class.crate_name.as_str()) {
            retained.push(SourceFile::parse(rel.clone(), src));
        }
    }
    observer_events(root, &mut report.violations)?;

    // Cross-file passes. Both skip gracefully in trees without the service
    // crate (synthetic fixture workspaces): shard-isolation over an empty
    // service file set finds nothing, and the schema gate only applies
    // when the snapshot document type exists. `retained` is path-sorted,
    // so the service files form its tail.
    let service_start = retained
        .iter()
        .position(|f| f.path.starts_with("crates/service/"))
        .unwrap_or(retained.len());
    report
        .violations
        .extend(shard_isolation(&retained[service_start..]));

    let committed = fs::read_to_string(root.join(schema::SCHEMA_FILE)).ok();
    let schema_result = schema::check(&retained, committed.as_deref());
    report.violations.extend(schema_result.violations);
    report.notes.extend(schema_result.notes);

    Ok(report)
}

/// The lexed + parsed library sources the snapshot-schema pass reads
/// (`crates/core` + `crates/service`), for the `schema` subcommand.
pub fn snapshot_source_files(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut files = collect_sources(root)?;
    files.sort_by(|a, b| a.0.cmp(&b.0));
    let mut out = Vec::new();
    for (rel, class) in &files {
        if class.kind == FileKind::Lib && RETAINED_CRATES.contains(&class.crate_name.as_str()) {
            out.push(SourceFile::parse(
                rel.clone(),
                fs::read_to_string(root.join(rel))?,
            ));
        }
    }
    Ok(out)
}

/// Gather `(workspace-relative path, classification)` for every scannable
/// source file.
fn collect_sources(root: &Path) -> io::Result<Vec<(String, FileClass)>> {
    let mut out = Vec::new();

    // Root facade crate.
    let facade = root.join("src/lib.rs");
    if facade.is_file() {
        out.push((
            "src/lib.rs".to_string(),
            FileClass {
                crate_name: "resmatch".to_string(),
                kind: FileKind::Lib,
                is_crate_root: true,
            },
        ));
    }

    let crates_dir = root.join("crates");
    if !crates_dir.is_dir() {
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!("no crates/ directory under {}", root.display()),
        ));
    }
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for crate_dir in crate_dirs {
        let crate_name = crate_dir
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("")
            .to_string();
        let src_dir = crate_dir.join("src");
        if !src_dir.is_dir() {
            continue;
        }
        walk_rs(&src_dir, &mut |path| {
            let rel = rel_path(root, path);
            let in_bin_dir = rel.contains("/src/bin/");
            let is_main = path.file_name().is_some_and(|n| n == "main.rs")
                && path.parent().is_some_and(|p| p.ends_with("src"));
            let kind = if in_bin_dir || is_main {
                FileKind::Bin
            } else {
                FileKind::Lib
            };
            let is_crate_root = path.file_name().is_some_and(|n| n == "lib.rs")
                && path.parent().is_some_and(|p| p.ends_with("src"));
            out.push((
                rel,
                FileClass {
                    crate_name: crate_name.clone(),
                    kind,
                    is_crate_root,
                },
            ));
        })?;
    }
    Ok(out)
}

/// Depth-first walk over `.rs` files under `dir`.
fn walk_rs(dir: &Path, f: &mut impl FnMut(&Path)) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            walk_rs(&path, f)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            f(&path);
        }
    }
    Ok(())
}

/// Workspace-relative `/`-separated path (stable across platforms, so the
/// baseline file diffs cleanly).
fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// The observer-events rule: every `SimObserver` method must be emitted in
/// `engine.rs`, every `SweepObserver` method in `experiment.rs`.
fn observer_events(root: &Path, out: &mut Vec<Violation>) -> io::Result<()> {
    let pairs = [
        ("SimObserver", "crates/sim/src/engine.rs"),
        ("SweepObserver", "crates/sim/src/experiment.rs"),
    ];
    let observer_rel = "crates/sim/src/observer.rs";
    let observer_path = root.join(observer_rel);
    if !observer_path.is_file() {
        // A tree without the sim crate (e.g. a test fixture workspace) has
        // nothing to enforce.
        return Ok(());
    }
    let observer_src = fs::read_to_string(&observer_path)?;
    for (trait_name, emitter_rel) in pairs {
        let methods = trait_method_names(&observer_src, trait_name);
        if methods.is_empty() {
            out.push(Violation {
                rule: Rule::ObserverEvents,
                path: observer_rel.to_string(),
                line: 1,
                col: 1,
                len: 1,
                msg: format!("trait `{trait_name}` not found (or has no methods)"),
            });
            continue;
        }
        let emitter_path = root.join(emitter_rel);
        let calls = if emitter_path.is_file() {
            method_call_sites(&fs::read_to_string(&emitter_path)?)
        } else {
            Default::default()
        };
        for (method, line) in methods {
            if !calls.contains(&method) {
                out.push(Violation {
                    rule: Rule::ObserverEvents,
                    path: observer_rel.to_string(),
                    line,
                    col: 1,
                    len: method.len() as u32,
                    msg: format!(
                        "`{trait_name}::{method}` has no emission site in \
                         {emitter_rel}; the event is declared but never fires"
                    ),
                });
            }
        }
    }
    Ok(())
}

/// Locate the workspace root: ascend from `start` until a directory with
/// both `Cargo.toml` and `crates/` appears.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        if d.join("Cargo.toml").is_file() && d.join("crates").is_dir() {
            return Some(d);
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}
