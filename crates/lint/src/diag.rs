//! rustc-style diagnostic rendering for [`Violation`]s.

use std::fmt::Write as _;

use crate::rules::Violation;

/// Render one diagnostic, optionally with the offending source line and a
/// caret underline:
///
/// ```text
/// error[panic-free]: `.unwrap()` can panic; convert to a typed error …
///   --> crates/sim/src/engine.rs:571:18
///    |
/// 571|             .take().unwrap();
///    |                     ^^^^^^
/// ```
pub fn render(v: &Violation, source_line: Option<&str>) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "error[{}]: {}", v.rule.id(), v.msg);
    let _ = writeln!(out, "  --> {}:{}:{}", v.path, v.line, v.col);
    if let Some(line) = source_line {
        let line = line.trim_end();
        let num = v.line.to_string();
        let gutter = " ".repeat(num.len());
        let _ = writeln!(out, "{gutter} |");
        let _ = writeln!(out, "{num} | {line}");
        let pad = " ".repeat(v.col.saturating_sub(1) as usize);
        let carets = "^".repeat((v.len.max(1)) as usize);
        let _ = writeln!(out, "{gutter} | {pad}{carets}");
    }
    out
}

/// Fetch 1-based line `line` from `src`, if present.
pub fn line_of(src: &str, line: u32) -> Option<&str> {
    src.lines().nth(line.saturating_sub(1) as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Rule;

    #[test]
    fn renders_with_caret() {
        let v = Violation {
            rule: Rule::PanicFree,
            path: "crates/x/src/a.rs".to_string(),
            line: 3,
            col: 9,
            len: 6,
            msg: "`.unwrap()` can panic".to_string(),
        };
        let rendered = render(&v, Some("        .unwrap();"));
        assert!(rendered.contains("error[panic-free]"));
        assert!(rendered.contains("--> crates/x/src/a.rs:3:9"));
        assert!(rendered.contains("3 |         .unwrap();"));
        assert!(rendered.contains("  |         ^^^^^^"));
    }
}
