//! Cross-file symbol pass: a workspace-level view over parsed items.
//!
//! The item parser ([`crate::parse`]) is per-file; the shard-isolation and
//! snapshot-schema rules need to see *across* files — `SnapshotState` lives
//! in `crates/core` while the codec that serialises it lives in
//! `crates/service`, and the service's hot estimate path calls through
//! free functions the parser sees as opaque names. This module builds the
//! minimal join: a name-keyed table of type and fn items over a set of
//! [`SourceFile`]s, call-site extraction from fn body token ranges, and a
//! name-based breadth-first reachability walk.
//!
//! Resolution is *by name*, deliberately: without type inference a call
//! `flush()` could be any `flush` in the file set, so the walk visits all
//! of them. That over-approximation is exactly right for an isolation
//! rule — it can only make the rule stricter, never blind.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::lexer::{lex, Lexed, Tok};
use crate::parse::{parse_items, type_head, Item, ItemKind};

/// One lexed-and-parsed source file, retained for cross-file passes.
pub struct SourceFile {
    /// Workspace-relative path (`crates/service/src/service.rs`).
    pub path: String,
    /// Full source text.
    pub src: String,
    /// Token stream + allow directives + doc lines.
    pub lexed: Lexed,
    /// Parsed item tree.
    pub items: Vec<Item>,
}

impl SourceFile {
    /// Lex and parse `src` into a retained file.
    pub fn parse(path: String, src: String) -> SourceFile {
        let lexed = lex(&src);
        let items = parse_items(&src, &lexed);
        SourceFile {
            path,
            src,
            lexed,
            items,
        }
    }
}

/// A function item with its owning context.
pub struct FnSym<'a> {
    /// Function name.
    pub name: &'a str,
    /// For associated fns, the head of the `impl` self type
    /// (`ServiceShard` for `impl ServiceShard { fn estimate … }`).
    pub owner: Option<String>,
    /// Index into the file set.
    pub file: usize,
    /// The parsed item (carries the body token range).
    pub item: &'a Item,
}

/// A struct/enum item and where it lives.
pub struct TypeSym<'a> {
    /// Index into the file set.
    pub file: usize,
    /// The parsed item (carries fields / variants).
    pub item: &'a Item,
}

/// Name-keyed symbols over a file set. Test-only items (`#[cfg(test)]` on
/// the item or any ancestor) are excluded — rules never see test code.
pub struct SymbolTable<'a> {
    /// Structs and enums by name. First definition wins on collision.
    pub types: BTreeMap<&'a str, TypeSym<'a>>,
    /// Every non-test fn, in file order.
    pub fns: Vec<FnSym<'a>>,
    /// Consts by name (`FORMAT_VERSION` → its item), first wins.
    pub consts: BTreeMap<&'a str, TypeSym<'a>>,
}

impl<'a> SymbolTable<'a> {
    /// Build the table over `files`.
    pub fn build(files: &'a [SourceFile]) -> SymbolTable<'a> {
        let mut table = SymbolTable {
            types: BTreeMap::new(),
            fns: Vec::new(),
            consts: BTreeMap::new(),
        };
        for (file_idx, file) in files.iter().enumerate() {
            collect(&file.items, file_idx, None, &mut table);
        }
        table
    }

    /// Indices into [`SymbolTable::fns`] for every fn with `name`.
    fn fns_named(&self, name: &str) -> impl Iterator<Item = usize> + '_ {
        let name = name.to_string();
        self.fns
            .iter()
            .enumerate()
            .filter(move |(_, f)| f.name == name)
            .map(|(i, _)| i)
    }
}

fn collect<'a>(
    items: &'a [Item],
    file_idx: usize,
    owner: Option<&'a Item>,
    table: &mut SymbolTable<'a>,
) {
    for item in items {
        if item.is_cfg_test() {
            continue;
        }
        match item.kind {
            ItemKind::Struct | ItemKind::Enum => {
                table.types.entry(item.name.as_str()).or_insert(TypeSym {
                    file: file_idx,
                    item,
                });
            }
            ItemKind::Fn => {
                let owner_name = owner
                    .filter(|o| o.kind == ItemKind::Impl)
                    .map(|o| type_head(&o.name).to_string());
                table.fns.push(FnSym {
                    name: item.name.as_str(),
                    owner: owner_name,
                    file: file_idx,
                    item,
                });
            }
            ItemKind::Const | ItemKind::Static => {
                table.consts.entry(item.name.as_str()).or_insert(TypeSym {
                    file: file_idx,
                    item,
                });
            }
            _ => {}
        }
        collect(&item.children, file_idx, Some(item), table);
    }
}

/// Names that appear in call position inside a fn body — any identifier
/// directly followed by `(`, which covers free calls (`flush(…)`), method
/// calls (`.flush(…)`), path calls (`codec::to_bytes(…)`), and tuple
/// constructors. Returns `(name, line)` pairs in source order.
pub fn called_names<'a>(file: &'a SourceFile, item: &Item) -> Vec<(&'a str, u32)> {
    let Some((start, end)) = item.body else {
        return Vec::new();
    };
    let toks = &file.lexed.tokens[start..end.min(file.lexed.tokens.len())];
    let mut out = Vec::new();
    for (callee, open) in toks.iter().zip(toks.iter().skip(1)) {
        if let (Tok::Ident(name), Tok::Punct('(')) = (&callee.tok, &open.tok) {
            out.push((name.as_str(), callee.line));
        }
    }
    out
}

/// Breadth-first, name-based reachability over the fn call graph: every fn
/// for which `is_root` holds seeds the walk, and a call site `name(…)`
/// reaches *every* fn named `name` in the file set. Returns indices into
/// [`SymbolTable::fns`], roots included, in visit order.
pub fn reachable_fns<'a>(
    table: &SymbolTable<'a>,
    files: &'a [SourceFile],
    is_root: impl Fn(&FnSym<'a>) -> bool,
) -> Vec<usize> {
    let mut seen = BTreeSet::new();
    let mut queue = VecDeque::new();
    for (idx, f) in table.fns.iter().enumerate() {
        if is_root(f) && seen.insert(idx) {
            queue.push_back(idx);
        }
    }
    let mut order = Vec::new();
    while let Some(idx) = queue.pop_front() {
        order.push(idx);
        let f = &table.fns[idx];
        for (name, _) in called_names(&files[f.file], f.item) {
            for callee in table.fns_named(name) {
                if seen.insert(callee) {
                    queue.push_back(callee);
                }
            }
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    fn files(sources: &[(&str, &str)]) -> Vec<SourceFile> {
        sources
            .iter()
            .map(|(p, s)| SourceFile::parse((*p).to_string(), (*s).to_string()))
            .collect()
    }

    #[test]
    fn table_indexes_types_fns_and_consts() {
        let fs = files(&[
            (
                "a.rs",
                "pub struct Doc { pub state: State }\n\
                 pub const VERSION: u32 = 3;\n\
                 impl Doc { pub fn encode(&self) {} }\n",
            ),
            ("b.rs", "pub enum State { V1 }\nfn free() {}\n"),
        ]);
        let table = SymbolTable::build(&fs);
        assert_eq!(table.types["Doc"].file, 0);
        assert_eq!(table.types["State"].file, 1);
        assert_eq!(table.consts["VERSION"].item.init.as_deref(), Some("3"));
        let encode = table
            .fns
            .iter()
            .find(|f| f.name == "encode")
            .expect("encode");
        assert_eq!(encode.owner.as_deref(), Some("Doc"));
        let free = table.fns.iter().find(|f| f.name == "free").expect("free");
        assert_eq!(free.owner, None);
    }

    #[test]
    fn cfg_test_items_are_invisible() {
        let fs = files(&[(
            "a.rs",
            "fn real() {}\n\
             #[cfg(test)]\n\
             mod tests {\n\
             \x20   struct Hidden { x: u32 }\n\
             \x20   fn helper() {}\n\
             }\n",
        )]);
        let table = SymbolTable::build(&fs);
        assert!(!table.types.contains_key("Hidden"));
        assert!(table.fns.iter().all(|f| f.name != "helper"));
        assert!(table.fns.iter().any(|f| f.name == "real"));
    }

    #[test]
    fn reachability_crosses_files_by_name() {
        let fs = files(&[
            (
                "service.rs",
                "impl Shard {\n\
                 \x20   pub fn estimate(&mut self) { self.flush_pending(); }\n\
                 \x20   fn flush_pending(&mut self) { apply(); }\n\
                 \x20   fn unrelated(&self) { never_called(); }\n\
                 }\n",
            ),
            (
                "apply.rs",
                "pub fn apply() { lock_step(); }\n\
                 fn lock_step() {}\n\
                 fn never_called() {}\n",
            ),
        ]);
        let table = SymbolTable::build(&fs);
        let reached = reachable_fns(&table, &fs, |f| f.name == "estimate");
        let names: BTreeSet<_> = reached.iter().map(|&i| table.fns[i].name).collect();
        assert!(names.contains("estimate"));
        assert!(names.contains("flush_pending"));
        assert!(names.contains("apply"));
        assert!(names.contains("lock_step"));
        assert!(!names.contains("unrelated"));
        assert!(!names.contains("never_called"));
    }

    #[test]
    fn called_names_cover_method_and_path_calls() {
        let fs = files(&[(
            "a.rs",
            "fn f(x: &T) { x.save(); codec::to_bytes(x); plain(); }\n",
        )]);
        let table = SymbolTable::build(&fs);
        let f = &table.fns[0];
        let names: Vec<_> = called_names(&fs[0], f.item)
            .iter()
            .map(|(n, _)| *n)
            .collect();
        assert!(names.contains(&"save"));
        assert!(names.contains(&"to_bytes"));
        assert!(names.contains(&"plain"));
    }
}
