//! A minimal Rust lexer: just enough token structure for invariant linting.
//!
//! The rules in this crate need to see *code* tokens — identifiers,
//! literals, punctuation — with comments, strings, char literals, and
//! lifetimes correctly skipped or classified, so that `unwrap` inside a
//! doc comment or a string never trips the panic-freedom rule. It is not a
//! full Rust lexer (no shebang handling, no `c"…"` C-strings), but it
//! covers everything the workspace's source uses: nested block comments,
//! raw strings with arbitrary `#` fences, byte strings/chars, numeric
//! literals with suffixes and exponents, and tuple-field access (`x.0`
//! lexes as punct + integer, never as a float).
//!
//! Alongside the token stream the lexer collects [`AllowDirective`]s —
//! `lint: allow(<rule>)` markers inside comments — which the scanner uses
//! to suppress a diagnostic on the same or the following line.

/// One lexed token kind. Literal *values* are only kept where a rule needs
/// them (identifiers for pattern matching, strings for `expect` message
/// classification).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (`unwrap`, `fn`, `HashMap`, …).
    Ident(String),
    /// Integer literal, value discarded.
    Int,
    /// Float literal (`1.0`, `1e9`, `2f64`), value discarded.
    Float,
    /// String literal with its unescaped-enough content (escapes are kept
    /// verbatim; rules only inspect prefixes).
    Str(String),
    /// Char or byte literal, value discarded.
    Char,
    /// Lifetime (`'a`), value discarded.
    Lifetime,
    /// Single punctuation character. Multi-character operators appear as
    /// consecutive `Punct` tokens (`==` is `Punct('=') Punct('=')`).
    Punct(char),
}

/// A token plus its source position (1-based line and column) and byte
/// length, for caret rendering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token kind and payload.
    pub tok: Tok,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column (bytes).
    pub col: u32,
    /// Byte length of the lexeme (for caret underlining).
    pub len: u32,
    /// Byte offset of the lexeme in the source (for lexeme extraction).
    pub off: u32,
}

/// The exact source text of one token — the item parser uses this to
/// rebuild type expressions and literal values the token stream discards.
pub fn lexeme<'a>(src: &'a str, t: &Token) -> &'a str {
    let start = t.off as usize;
    let end = (start + t.len as usize).min(src.len());
    src.get(start..end).unwrap_or("")
}

/// A `lint: allow(<rule>)` marker found in a comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowDirective {
    /// 1-based line the directive's comment starts on.
    pub line: u32,
    /// Rule identifier inside `allow(…)`, e.g. `determinism`.
    pub rule: String,
}

/// Output of [`lex`]: the token stream plus any allow directives.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub tokens: Vec<Token>,
    /// Allow directives harvested from comments.
    pub allows: Vec<AllowDirective>,
    /// Lines on which a doc comment (`///`, `//!`, `/** … */`, `/*! … */`)
    /// starts, in source order. The item parser uses these to decide
    /// whether an item carries documentation.
    pub doc_lines: Vec<u32>,
}

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Cursor {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek_at(&self, offset: usize) -> Option<u8> {
        self.src.get(self.pos + offset).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn eat_while(&mut self, pred: impl Fn(u8) -> bool) {
        while let Some(b) = self.peek() {
            if pred(b) {
                self.bump();
            } else {
                break;
            }
        }
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Harvest `lint: allow(<rule>)` directives from a comment's text.
fn harvest_allows(comment: &str, line: u32, allows: &mut Vec<AllowDirective>) {
    let mut rest = comment;
    while let Some(idx) = rest.find("lint: allow(") {
        let tail = &rest[idx + "lint: allow(".len()..];
        if let Some(end) = tail.find(')') {
            let rule = tail[..end].trim().to_string();
            if !rule.is_empty() {
                allows.push(AllowDirective { line, rule });
            }
            rest = &tail[end..];
        } else {
            break;
        }
    }
}

/// Lex `src` into tokens plus allow directives.
///
/// The lexer never fails: malformed input degrades to punctuation tokens,
/// which at worst makes a rule miss a site in a file rustc would reject
/// anyway.
pub fn lex(src: &str) -> Lexed {
    let mut c = Cursor::new(src);
    let mut out = Lexed::default();

    while let Some(b) = c.peek() {
        let (line, col) = (c.line, c.col);
        let start = c.pos;
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                c.bump();
            }
            b'/' if c.peek_at(1) == Some(b'/') => {
                // Line comment (also doc `///` and `//!`).
                let text_start = c.pos;
                c.eat_while(|b| b != b'\n');
                let text = std::str::from_utf8(&c.src[text_start..c.pos]).unwrap_or("");
                if text.starts_with("//!") || (text.starts_with("///") && !text.starts_with("////"))
                {
                    out.doc_lines.push(line);
                }
                harvest_allows(text, line, &mut out.allows);
            }
            b'/' if c.peek_at(1) == Some(b'*') => {
                // Block comment, possibly nested.
                if matches!(c.peek_at(2), Some(b'*' | b'!')) && c.peek_at(3) != Some(b'*') {
                    out.doc_lines.push(line);
                }
                let text_start = c.pos;
                c.bump();
                c.bump();
                let mut depth = 1u32;
                while depth > 0 {
                    match (c.peek(), c.peek_at(1)) {
                        (Some(b'/'), Some(b'*')) => {
                            c.bump();
                            c.bump();
                            depth += 1;
                        }
                        (Some(b'*'), Some(b'/')) => {
                            c.bump();
                            c.bump();
                            depth -= 1;
                        }
                        (Some(_), _) => {
                            c.bump();
                        }
                        (None, _) => break,
                    }
                }
                let text = std::str::from_utf8(&c.src[text_start..c.pos]).unwrap_or("");
                harvest_allows(text, line, &mut out.allows);
            }
            b'"' => {
                let content = lex_string(&mut c);
                out.tokens.push(Token {
                    tok: Tok::Str(content),
                    line,
                    col,
                    len: (c.pos - start) as u32,
                    off: start as u32,
                });
            }
            b'r' | b'b' if starts_prefixed_literal(&c) => {
                let tok = lex_prefixed_literal(&mut c);
                out.tokens.push(Token {
                    tok,
                    line,
                    col,
                    len: (c.pos - start) as u32,
                    off: start as u32,
                });
            }
            b'\'' => {
                // Lifetime or char literal. `'a` / `'static` → lifetime
                // (identifier after the quote, no closing quote right
                // after a single char); `'x'`, `'\n'` → char.
                let is_char = match (c.peek_at(1), c.peek_at(2)) {
                    (Some(b'\\'), _) => true,
                    (Some(x), Some(b'\'')) if x != b'\'' => true,
                    _ => false,
                };
                if is_char {
                    c.bump(); // opening quote
                    if c.peek() == Some(b'\\') {
                        c.bump();
                        c.bump(); // escaped char (simple escapes; \u{…} below)
                        if c.peek() == Some(b'{') {
                            c.eat_while(|b| b != b'}');
                            c.bump();
                        }
                    } else {
                        c.bump();
                    }
                    if c.peek() == Some(b'\'') {
                        c.bump();
                    }
                    out.tokens.push(Token {
                        tok: Tok::Char,
                        line,
                        col,
                        len: (c.pos - start) as u32,
                        off: start as u32,
                    });
                } else {
                    c.bump();
                    c.eat_while(is_ident_continue);
                    out.tokens.push(Token {
                        tok: Tok::Lifetime,
                        line,
                        col,
                        len: (c.pos - start) as u32,
                        off: start as u32,
                    });
                }
            }
            b'0'..=b'9' => {
                let tok = lex_number(&mut c);
                out.tokens.push(Token {
                    tok,
                    line,
                    col,
                    len: (c.pos - start) as u32,
                    off: start as u32,
                });
            }
            _ if is_ident_start(b) => {
                c.eat_while(is_ident_continue);
                let text = std::str::from_utf8(&c.src[start..c.pos])
                    .unwrap_or("")
                    .to_string();
                out.tokens.push(Token {
                    tok: Tok::Ident(text),
                    line,
                    col,
                    len: (c.pos - start) as u32,
                    off: start as u32,
                });
            }
            _ => {
                c.bump();
                out.tokens.push(Token {
                    tok: Tok::Punct(b as char),
                    line,
                    col,
                    len: 1,
                    off: start as u32,
                });
            }
        }
    }
    out
}

/// True when the cursor sits on `r"`, `r#`, `b"`, `b'`, `br"`, or `br#` —
/// i.e. a prefixed literal rather than an identifier starting with r/b.
fn starts_prefixed_literal(c: &Cursor<'_>) -> bool {
    matches!(
        (c.peek(), c.peek_at(1), c.peek_at(2)),
        (Some(b'r'), Some(b'"' | b'#'), _)
            | (Some(b'b'), Some(b'"' | b'\''), _)
            | (Some(b'b'), Some(b'r'), Some(b'"' | b'#'))
    )
}

/// Lex a literal starting with `r`/`b`/`br` prefixes.
fn lex_prefixed_literal(c: &mut Cursor<'_>) -> Tok {
    let mut raw = false;
    if c.peek() == Some(b'b') {
        c.bump();
    }
    if c.peek() == Some(b'r') && matches!(c.peek_at(1), Some(b'"' | b'#')) {
        raw = true;
        c.bump();
    }
    if c.peek() == Some(b'\'') {
        // Byte char: b'x' or b'\n'.
        c.bump();
        if c.peek() == Some(b'\\') {
            c.bump();
        }
        c.bump();
        if c.peek() == Some(b'\'') {
            c.bump();
        }
        return Tok::Char;
    }
    if raw {
        let mut fence = 0usize;
        while c.peek() == Some(b'#') {
            fence += 1;
            c.bump();
        }
        c.bump(); // opening quote
        let content_start = c.pos;
        let content_end;
        loop {
            match c.peek() {
                Some(b'"') => {
                    let quote_pos = c.pos;
                    c.bump();
                    let mut seen = 0usize;
                    while seen < fence && c.peek() == Some(b'#') {
                        c.bump();
                        seen += 1;
                    }
                    if seen == fence {
                        content_end = quote_pos;
                        break;
                    }
                }
                Some(_) => {
                    c.bump();
                }
                None => {
                    content_end = c.pos;
                    break;
                }
            }
        }
        let content = std::str::from_utf8(&c.src[content_start..content_end])
            .unwrap_or("")
            .to_string();
        Tok::Str(content)
    } else {
        // b"…" — same shape as a plain string.
        let content = lex_string(c);
        Tok::Str(content)
    }
}

/// Lex a `"…"` string (cursor on the opening quote), returning its content
/// with escapes kept verbatim.
fn lex_string(c: &mut Cursor<'_>) -> String {
    c.bump(); // opening quote
    let content_start = c.pos;
    let content_end;
    loop {
        match c.peek() {
            Some(b'\\') => {
                c.bump();
                c.bump();
            }
            Some(b'"') => {
                content_end = c.pos;
                c.bump();
                break;
            }
            Some(_) => {
                c.bump();
            }
            None => {
                content_end = c.pos;
                break;
            }
        }
    }
    std::str::from_utf8(&c.src[content_start..content_end])
        .unwrap_or("")
        .to_string()
}

/// Lex a numeric literal (cursor on the first digit). Distinguishes floats
/// from integers, including tuple-index ambiguity: `1.max()` and `x.0` stay
/// integers, `1.`, `1.0`, `1e9`, and `2f64` are floats.
fn lex_number(c: &mut Cursor<'_>) -> Tok {
    let mut float = false;
    if c.peek() == Some(b'0') && matches!(c.peek_at(1), Some(b'x' | b'o' | b'b')) {
        c.bump();
        c.bump();
        c.eat_while(|b| b.is_ascii_alphanumeric() || b == b'_');
        return Tok::Int;
    }
    c.eat_while(|b| b.is_ascii_digit() || b == b'_');
    if c.peek() == Some(b'.') {
        // `1.0` and `1.` are floats; `1.max(2)` and ranges `1..x` are not.
        match c.peek_at(1) {
            Some(d) if d.is_ascii_digit() => {
                float = true;
                c.bump();
                c.eat_while(|b| b.is_ascii_digit() || b == b'_');
            }
            Some(b'.') => {}                   // range `1..`
            Some(d) if is_ident_start(d) => {} // method call `1.max(…)`
            _ => {
                float = true;
                c.bump(); // trailing-dot float `1.`
            }
        }
    }
    if matches!(c.peek(), Some(b'e' | b'E')) {
        // Exponent only when followed by digits (or sign+digits); `1e` as
        // part of an ident suffix is not valid Rust anyway.
        let next = c.peek_at(1);
        let next2 = c.peek_at(2);
        let exp = match next {
            Some(d) if d.is_ascii_digit() => true,
            Some(b'+' | b'-') => matches!(next2, Some(d) if d.is_ascii_digit()),
            _ => false,
        };
        if exp {
            float = true;
            c.bump();
            if matches!(c.peek(), Some(b'+' | b'-')) {
                c.bump();
            }
            c.eat_while(|b| b.is_ascii_digit() || b == b'_');
        }
    }
    // Type suffix: `1f64` / `1.0f32` are floats, `1u64` stays an integer.
    if matches!(c.peek(), Some(b'f')) {
        let suffix_is_float = matches!(
            (c.peek_at(1), c.peek_at(2)),
            (Some(b'3'), Some(b'2')) | (Some(b'6'), Some(b'4'))
        );
        if suffix_is_float {
            float = true;
        }
    }
    c.eat_while(is_ident_continue);
    if float {
        Tok::Float
    } else {
        Tok::Int
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn comments_and_strings_hide_tokens() {
        let src = concat!(
            "// unwrap() in a comment\n",
            "/* panic! in /* nested */ block */\n",
            "let x = \"unwrap() in a string\";\n",
            "let y = r",
            "#\"raw unwrap()\"",
            "# ;\n",
        );
        let ids = idents(src);
        assert!(!ids.contains(&"unwrap".to_string()), "{ids:?}");
        assert!(!ids.contains(&"panic".to_string()));
        assert!(ids.contains(&"let".to_string()));
    }

    #[test]
    fn tuple_index_is_not_a_float() {
        let toks = lex("a.0 == 2 && b == 1.0");
        let floats = toks.tokens.iter().filter(|t| t.tok == Tok::Float).count();
        let ints = toks.tokens.iter().filter(|t| t.tok == Tok::Int).count();
        assert_eq!(floats, 1);
        assert_eq!(ints, 2); // the `.0` tuple index and the `2`
    }

    #[test]
    fn float_shapes() {
        for src in ["1.0", "1.", "1e9", "1E-9", "2f64", "3.5f32", "1_000.5"] {
            let toks = lex(src);
            assert_eq!(toks.tokens.len(), 1, "{src}");
            assert_eq!(toks.tokens[0].tok, Tok::Float, "{src}");
        }
        for src in ["1", "0x1f", "1u64", "1_000", "0b101"] {
            let toks = lex(src);
            assert_eq!(toks.tokens.len(), 1, "{src}");
            assert_eq!(toks.tokens[0].tok, Tok::Int, "{src}");
        }
    }

    #[test]
    fn range_and_method_calls_stay_integers() {
        let toks = lex("for i in 0..10 { x = 1.max(2); }");
        assert!(toks.tokens.iter().all(|t| t.tok != Tok::Float));
    }

    #[test]
    fn lifetimes_vs_chars() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        let lifetimes = toks
            .tokens
            .iter()
            .filter(|t| t.tok == Tok::Lifetime)
            .count();
        let chars = toks.tokens.iter().filter(|t| t.tok == Tok::Char).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 2);
    }

    #[test]
    fn allow_directives_are_harvested() {
        let src = "let x = 1; // lint: allow(determinism): wall-clock is fine here\n";
        let lexed = lex(src);
        assert_eq!(lexed.allows.len(), 1);
        assert_eq!(lexed.allows[0].rule, "determinism");
        assert_eq!(lexed.allows[0].line, 1);
    }

    #[test]
    fn expect_message_content_is_captured() {
        let lexed = lex(".expect(\"invariant: slab id is live\")");
        let strings: Vec<_> = lexed
            .tokens
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Str(s) => Some(s.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(strings, vec!["invariant: slab id is live".to_string()]);
    }
}
