//! A lightweight recursive-descent *item* parser on top of [`crate::lexer`].
//!
//! The syntax-aware rules (shard-isolation, hot-path-alloc,
//! snapshot-schema) need more structure than a flat token stream: which
//! `impl` block a line lives in, what fields a struct declares and in what
//! order, whether a `static` is `mut`, what a `const` is initialised to.
//! This module parses exactly that — a brace-matched item tree of
//! `mod`/`fn`/`struct`/`enum`/`impl`/`trait`/`static`/`const`/`type` with
//! attributes, doc state, and canonicalised type text — and deliberately
//! nothing more. There is no expression parsing, no name resolution, and
//! no type checking: function bodies are kept as token-index ranges for
//! the symbol pass to scan, and types are re-rendered as canonical text
//! (`Vec<PersistedGroup>`, `&'a mut T`) for fingerprinting and matching.
//!
//! The parser never fails. Unrecognised constructs are skipped
//! tree-balanced (so a stray macro or an `extern` block cannot desync the
//! brace matching), which at worst hides an item from a rule in a file
//! rustc would reject anyway — the same degradation contract the lexer
//! follows.

use crate::lexer::{lexeme, Lexed, Tok, Token};

/// What kind of item a node is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemKind {
    /// `mod name { … }` or `mod name;`
    Mod,
    /// `fn name(…) { … }` (free, associated, or trait-default).
    Fn,
    /// `struct Name { … }`, tuple struct, or unit struct.
    Struct,
    /// `enum Name { … }`
    Enum,
    /// `impl Type { … }` or `impl Trait for Type { … }`
    Impl,
    /// `trait Name { … }`
    Trait,
    /// `static NAME: Ty = …;`
    Static,
    /// `const NAME: Ty = …;`
    Const,
    /// `type Name = Ty;`
    TypeAlias,
}

/// One struct field (or tuple-struct / tuple-variant slot, named by
/// position: `"0"`, `"1"`, …).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Field name, or the decimal position for tuple fields.
    pub name: String,
    /// Canonical type text (see [`canonical_text`]).
    pub ty: String,
    /// 1-based line the field starts on.
    pub line: u32,
}

/// One enum variant with its payload fields (empty for unit variants).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Variant {
    /// Variant name.
    pub name: String,
    /// Payload fields; tuple payloads use positional names.
    pub fields: Vec<Field>,
    /// 1-based line the variant starts on.
    pub line: u32,
}

/// One parsed item. Which fields are populated depends on [`ItemKind`]:
/// structs carry `fields`, enums `variants`, statics/consts `ty`/`init`,
/// impls `trait_name` + `children`, mods/traits `children`, fns `body`.
#[derive(Debug, Clone)]
pub struct Item {
    /// Item kind.
    pub kind: ItemKind,
    /// Item name. For impls this is the canonical *self type* text
    /// (`ServiceShard`, `Vec<T>`); use [`type_head`] for the bare name.
    pub name: String,
    /// For `impl Trait for Type`, the canonical trait path text.
    pub trait_name: Option<String>,
    /// 1-based line of the introducing keyword (or first attribute).
    pub line: u32,
    /// 1-based line of the closing brace / semicolon.
    pub end_line: u32,
    /// Outer attributes, canonicalised (`#[cfg(test)]`, `#[derive(Debug)]`).
    pub attrs: Vec<String>,
    /// Whether a doc comment immediately precedes the item.
    pub has_doc: bool,
    /// True only for `static mut` items.
    pub is_mut_static: bool,
    /// Declared type of a static/const/type-alias, canonicalised.
    pub ty: Option<String>,
    /// Initialiser text of a static/const, canonicalised (`1`, `*b"RSNP"`).
    pub init: Option<String>,
    /// Struct fields, declaration order.
    pub fields: Vec<Field>,
    /// Enum variants, declaration order.
    pub variants: Vec<Variant>,
    /// Token-index range of a fn body (exclusive of the braces), into the
    /// file's token stream — the symbol pass scans this for call sites.
    pub body: Option<(usize, usize)>,
    /// Nested items (mod / impl / trait members).
    pub children: Vec<Item>,
}

impl Item {
    fn new(kind: ItemKind, line: u32) -> Item {
        Item {
            kind,
            name: String::new(),
            trait_name: None,
            line,
            end_line: line,
            attrs: Vec::new(),
            has_doc: false,
            is_mut_static: false,
            ty: None,
            init: None,
            fields: Vec::new(),
            variants: Vec::new(),
            body: None,
            children: Vec::new(),
        }
    }

    /// True when any outer attribute marks the item test-only.
    pub fn is_cfg_test(&self) -> bool {
        self.attrs.iter().any(|a| a.contains("cfg(test)"))
    }
}

/// The bare head identifier of a canonical type text: `Vec<T>` → `Vec`,
/// `resmatch_core::snapshot::SnapshotState` → `SnapshotState`,
/// `&ServiceShard` → `ServiceShard`. Returns `""` for non-path types.
pub fn type_head(ty: &str) -> &str {
    let mut ty = ty.trim_start_matches(['&', '*']);
    loop {
        let t = ty.trim_start();
        if let Some(rest) = t.strip_prefix('\'') {
            // Skip a lifetime token (`'a `) to reach the path.
            let end = rest.find([' ', ',', '>', ')']).map_or(rest.len(), |i| i);
            ty = &rest[end..];
            continue;
        }
        if let Some(rest) = t.strip_prefix("mut ") {
            ty = rest;
            continue;
        }
        if let Some(rest) = t.strip_prefix("dyn ") {
            ty = rest;
            continue;
        }
        ty = t;
        break;
    }
    let head = ty.split(['<', '(']).next().unwrap_or(ty);
    head.rsplit("::").next().unwrap_or(head).trim()
}

/// Render a token slice as canonical type/attribute text: lexemes joined
/// with a space only between two word-like tokens, so `Vec < T >` becomes
/// `Vec<T>` and `& 'a mut T` becomes `&'a mut T`. Deterministic for a
/// given token stream — the schema fingerprint hashes this text.
pub fn canonical_text(src: &str, toks: &[Token]) -> String {
    let mut out = String::new();
    let mut prev_wordy = false;
    for t in toks {
        let wordy = matches!(
            t.tok,
            Tok::Ident(_) | Tok::Int | Tok::Float | Tok::Lifetime | Tok::Char | Tok::Str(_)
        );
        if wordy && prev_wordy {
            out.push(' ');
        }
        out.push_str(lexeme(src, t));
        prev_wordy = wordy;
    }
    out
}

/// Parse a lexed file into its item tree.
pub fn parse_items(src: &str, lexed: &Lexed) -> Vec<Item> {
    let mut p = Parser {
        toks: &lexed.tokens,
        src,
        doc_lines: &lexed.doc_lines,
        pos: 0,
    };
    p.items(false)
}

/// Visit every item in the tree with its (optional) parent, depth-first.
pub fn walk_items<'a>(items: &'a [Item], f: &mut impl FnMut(&'a Item, Option<&'a Item>)) {
    fn go<'a>(
        items: &'a [Item],
        parent: Option<&'a Item>,
        f: &mut impl FnMut(&'a Item, Option<&'a Item>),
    ) {
        for item in items {
            f(item, parent);
            go(&item.children, Some(item), f);
        }
    }
    go(items, None, f);
}

/// The chain of items whose line span contains `line`, outermost first.
/// Used to answer "which fn / which impl does this diagnostic site live
/// in" without a token-to-item back map.
pub fn enclosing(items: &[Item], line: u32) -> Vec<&Item> {
    let mut path = Vec::new();
    let mut level = items;
    while let Some(hit) = level.iter().find(|i| i.line <= line && line <= i.end_line) {
        path.push(hit);
        level = &hit.children;
    }
    path
}

/// Bracket-nesting depths used while scanning signatures and types.
/// Angle brackets are tracked arrow-aware: the `>` in `->` and `=>` never
/// closes a generic.
#[derive(Default)]
struct Depth {
    paren: i32,
    bracket: i32,
    brace: i32,
    angle: i32,
}

impl Depth {
    fn zero(&self) -> bool {
        self.paren == 0 && self.bracket == 0 && self.brace == 0 && self.angle == 0
    }

    /// Update for `cur`; `prev` disambiguates `->` / `=>` from `>`.
    /// `track_angle` is off when scanning expressions, where `<` is more
    /// likely a comparison than a generic.
    fn update(&mut self, cur: &Tok, prev: Option<&Tok>, track_angle: bool) {
        match cur {
            Tok::Punct('(') => self.paren += 1,
            Tok::Punct(')') => self.paren -= 1,
            Tok::Punct('[') => self.bracket += 1,
            Tok::Punct(']') => self.bracket -= 1,
            Tok::Punct('{') => self.brace += 1,
            Tok::Punct('}') => self.brace -= 1,
            Tok::Punct('<') if track_angle => self.angle += 1,
            Tok::Punct('>') if track_angle => {
                let arrow = matches!(prev, Some(Tok::Punct('-' | '=')));
                if !arrow && self.angle > 0 {
                    self.angle -= 1;
                }
            }
            _ => {}
        }
    }
}

struct Parser<'a> {
    toks: &'a [Token],
    src: &'a str,
    doc_lines: &'a [u32],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn cur(&self) -> Option<&'a Token> {
        self.toks.get(self.pos)
    }

    fn cur_tok(&self) -> Option<&'a Tok> {
        self.cur().map(|t| &t.tok)
    }

    fn nth_tok(&self, n: usize) -> Option<&'a Tok> {
        self.toks.get(self.pos + n).map(|t| &t.tok)
    }

    fn cur_ident(&self) -> Option<&'a str> {
        match self.cur_tok() {
            Some(Tok::Ident(s)) => Some(s.as_str()),
            _ => None,
        }
    }

    fn at_punct(&self, ch: char) -> bool {
        matches!(self.cur_tok(), Some(Tok::Punct(c)) if *c == ch)
    }

    fn bump(&mut self) {
        self.pos += 1;
    }

    fn cur_line(&self) -> u32 {
        self.cur().map_or(0, |t| t.line)
    }

    /// Skip one token; if it opens a `(`/`[`/`{` group, skip the whole
    /// balanced tree. Guarantees progress.
    fn skip_tree(&mut self) {
        match self.cur_tok() {
            Some(Tok::Punct('(')) => self.skip_balanced('(', ')'),
            Some(Tok::Punct('[')) => self.skip_balanced('[', ']'),
            Some(Tok::Punct('{')) => self.skip_balanced('{', '}'),
            Some(_) => self.bump(),
            None => {}
        }
    }

    /// Consume a balanced `open … close` group, cursor on `open`.
    fn skip_balanced(&mut self, open: char, close: char) {
        let mut depth = 0i32;
        while let Some(tok) = self.cur_tok() {
            match tok {
                Tok::Punct(c) if *c == open => depth += 1,
                Tok::Punct(c) if *c == close => {
                    depth -= 1;
                    if depth == 0 {
                        self.bump();
                        return;
                    }
                }
                _ => {}
            }
            self.bump();
        }
    }

    /// Skip a `<…>` generic parameter list if the cursor is on `<`.
    fn skip_generics(&mut self) {
        if !self.at_punct('<') {
            return;
        }
        let mut depth = Depth::default();
        let mut prev: Option<&Tok> = None;
        while let Some(tok) = self.cur_tok() {
            depth.update(tok, prev, true);
            prev = Some(tok);
            self.bump();
            if depth.zero() {
                return;
            }
        }
    }

    /// Collect tokens until `stop` matches at depth zero, returning the
    /// canonical text of everything consumed (exclusive of the stop
    /// token). `track_angle` selects type-vs-expression `<` handling.
    fn text_until(&mut self, track_angle: bool, stop: impl Fn(&Tok) -> bool) -> String {
        let start = self.pos;
        let mut depth = Depth::default();
        let mut prev: Option<&Tok> = None;
        while let Some(tok) = self.cur_tok() {
            if depth.zero() && stop(tok) {
                break;
            }
            depth.update(tok, prev, track_angle);
            prev = Some(tok);
            self.bump();
        }
        canonical_text(self.src, &self.toks[start..self.pos])
    }

    /// Parse items until EOF, or until a `}` at this level when
    /// `inside_braces` (the caller consumes the brace).
    fn items(&mut self, inside_braces: bool) -> Vec<Item> {
        let mut out = Vec::new();
        while self.pos < self.toks.len() {
            if inside_braces && self.at_punct('}') {
                break;
            }
            let checkpoint = self.pos;
            if let Some(item) = self.item() {
                out.push(item);
            }
            if self.pos == checkpoint {
                self.skip_tree();
            }
        }
        out
    }

    /// Try to parse one item at the cursor. Returns `None` (after making
    /// whatever progress it safely can) for non-item constructs.
    fn item(&mut self) -> Option<Item> {
        let start_idx = self.pos;
        let prev_line = if start_idx == 0 {
            0
        } else {
            self.toks[start_idx - 1].line
        };
        let first_line = self.cur_line();

        // Outer attributes stick to the item; inner `#![…]` are skipped.
        let mut attrs = Vec::new();
        while self.at_punct('#') {
            let inner = matches!(self.nth_tok(1), Some(Tok::Punct('!')));
            let attr_start = self.pos;
            self.bump();
            if inner {
                self.bump();
            }
            if self.at_punct('[') {
                self.skip_balanced('[', ']');
            }
            if !inner {
                attrs.push(canonical_text(self.src, &self.toks[attr_start..self.pos]));
            }
        }

        // Visibility and fn modifiers.
        loop {
            match self.cur_ident() {
                Some("pub") => {
                    self.bump();
                    if self.at_punct('(') {
                        self.skip_balanced('(', ')');
                    }
                }
                Some("unsafe" | "async" | "default") => self.bump(),
                Some("extern") => {
                    self.bump();
                    if matches!(self.cur_tok(), Some(Tok::Str(_))) {
                        self.bump();
                    }
                }
                Some("const") if matches!(self.nth_tok(1), Some(Tok::Ident(k)) if k == "fn") => {
                    self.bump();
                }
                _ => break,
            }
        }

        let kw = self.cur_ident()?;
        let line = self.cur_line();
        let mut item = match kw {
            "mod" => self.finish_mod(line),
            "fn" => self.finish_fn(line),
            "struct" => self.finish_struct(line),
            "enum" => self.finish_enum(line),
            "impl" => self.finish_impl(line),
            "trait" => self.finish_trait(line),
            "static" | "const" => self.finish_static_const(line, kw == "static"),
            "type" => self.finish_type_alias(line),
            "use" | "macro_rules" => {
                self.skip_statement();
                return None;
            }
            _ if matches!(self.nth_tok(1), Some(Tok::Punct('!'))) => {
                // Item-level macro invocation (`thread_local! { … }`).
                self.skip_statement();
                return None;
            }
            _ => return None,
        }?;

        item.line = first_line.min(item.line);
        item.attrs = attrs;
        item.has_doc = self
            .doc_lines
            .iter()
            .any(|&d| d > prev_line && d <= first_line);
        Some(item)
    }

    /// Consume through the end of a `use`/macro statement: the first `;`
    /// at depth zero, or the end of a braced group.
    fn skip_statement(&mut self) {
        let mut depth = Depth::default();
        while let Some(tok) = self.cur_tok() {
            if depth.zero() {
                if matches!(tok, Tok::Punct(';')) {
                    self.bump();
                    return;
                }
                if matches!(tok, Tok::Punct('{')) {
                    self.skip_balanced('{', '}');
                    return;
                }
            }
            depth.update(tok, None, false);
            self.bump();
        }
    }

    fn finish_mod(&mut self, line: u32) -> Option<Item> {
        self.bump(); // `mod`
        let mut item = Item::new(ItemKind::Mod, line);
        item.name = self.cur_ident()?.to_string();
        self.bump();
        if self.at_punct(';') {
            item.end_line = self.cur_line();
            self.bump();
        } else if self.at_punct('{') {
            self.bump();
            item.children = self.items(true);
            item.end_line = self.cur_line();
            self.bump(); // `}`
        }
        Some(item)
    }

    fn finish_fn(&mut self, line: u32) -> Option<Item> {
        self.bump(); // `fn`
        let mut item = Item::new(ItemKind::Fn, line);
        item.name = self.cur_ident()?.to_string();
        self.bump();
        // Signature: everything up to the body `{` or a `;` declaration.
        let mut depth = Depth::default();
        let mut prev: Option<&Tok> = None;
        while let Some(tok) = self.cur_tok() {
            if depth.zero() {
                if matches!(tok, Tok::Punct('{')) {
                    let body_start = self.pos + 1;
                    self.skip_balanced('{', '}');
                    item.body = Some((body_start, self.pos - 1));
                    item.end_line = self.toks[self.pos - 1].line;
                    return Some(item);
                }
                if matches!(tok, Tok::Punct(';')) {
                    item.end_line = self.cur_line();
                    self.bump();
                    return Some(item);
                }
            }
            depth.update(tok, prev, true);
            prev = Some(tok);
            self.bump();
        }
        Some(item)
    }

    fn finish_struct(&mut self, line: u32) -> Option<Item> {
        self.bump(); // `struct`
        let mut item = Item::new(ItemKind::Struct, line);
        item.name = self.cur_ident()?.to_string();
        self.bump();
        self.skip_generics();
        if self.at_punct('(') {
            self.bump();
            item.fields = self.tuple_fields(')');
            self.bump(); // `)`
            let _ = self.text_until(false, |t| matches!(t, Tok::Punct(';'))); // where clause
            item.end_line = self.cur_line();
            self.bump(); // `;`
            return Some(item);
        }
        // Skip a where clause.
        let _ = self.text_until(true, |t| matches!(t, Tok::Punct('{' | ';')));
        if self.at_punct(';') {
            item.end_line = self.cur_line();
            self.bump();
            return Some(item);
        }
        if self.at_punct('{') {
            self.bump();
            item.fields = self.named_fields();
            item.end_line = self.cur_line();
            self.bump(); // `}`
        }
        Some(item)
    }

    /// Named fields inside `{ … }`, cursor just past the opening brace.
    fn named_fields(&mut self) -> Vec<Field> {
        let mut fields = Vec::new();
        loop {
            while self.at_punct('#') {
                self.bump();
                if self.at_punct('[') {
                    self.skip_balanced('[', ']');
                }
            }
            if self.at_punct('}') || self.cur().is_none() {
                break;
            }
            if self.cur_ident() == Some("pub") {
                self.bump();
                if self.at_punct('(') {
                    self.skip_balanced('(', ')');
                }
            }
            let Some(name) = self.cur_ident() else {
                self.skip_tree();
                continue;
            };
            let (name, field_line) = (name.to_string(), self.cur_line());
            self.bump();
            if !self.at_punct(':') {
                continue;
            }
            self.bump();
            let ty = self.text_until(true, |t| matches!(t, Tok::Punct(',' | '}')));
            fields.push(Field {
                name,
                ty,
                line: field_line,
            });
            if self.at_punct(',') {
                self.bump();
            }
        }
        fields
    }

    /// Tuple fields inside `( … )`, cursor just past the opening paren;
    /// `close` is `)` . Fields are named positionally.
    fn tuple_fields(&mut self, close: char) -> Vec<Field> {
        let mut fields = Vec::new();
        let mut index = 0usize;
        loop {
            while self.at_punct('#') {
                self.bump();
                if self.at_punct('[') {
                    self.skip_balanced('[', ']');
                }
            }
            if self.at_punct(close) || self.cur().is_none() {
                break;
            }
            if self.cur_ident() == Some("pub") {
                self.bump();
                if self.at_punct('(') {
                    self.skip_balanced('(', ')');
                }
            }
            let field_line = self.cur_line();
            let ty = self.text_until(
                true,
                move |t| matches!(t, Tok::Punct(c) if *c == ',' || *c == close),
            );
            if !ty.is_empty() {
                fields.push(Field {
                    name: index.to_string(),
                    ty,
                    line: field_line,
                });
                index += 1;
            }
            if self.at_punct(',') {
                self.bump();
            }
        }
        fields
    }

    fn finish_enum(&mut self, line: u32) -> Option<Item> {
        self.bump(); // `enum`
        let mut item = Item::new(ItemKind::Enum, line);
        item.name = self.cur_ident()?.to_string();
        self.bump();
        self.skip_generics();
        let _ = self.text_until(true, |t| matches!(t, Tok::Punct('{' | ';')));
        if !self.at_punct('{') {
            item.end_line = self.cur_line();
            self.bump();
            return Some(item);
        }
        self.bump();
        loop {
            while self.at_punct('#') {
                self.bump();
                if self.at_punct('[') {
                    self.skip_balanced('[', ']');
                }
            }
            if self.at_punct('}') || self.cur().is_none() {
                break;
            }
            let Some(name) = self.cur_ident() else {
                self.skip_tree();
                continue;
            };
            let mut variant = Variant {
                name: name.to_string(),
                fields: Vec::new(),
                line: self.cur_line(),
            };
            self.bump();
            if self.at_punct('(') {
                self.bump();
                variant.fields = self.tuple_fields(')');
                self.bump(); // `)`
            } else if self.at_punct('{') {
                self.bump();
                variant.fields = self.named_fields();
                self.bump(); // `}`
            } else if self.at_punct('=') {
                self.bump();
                let _ = self.text_until(false, |t| matches!(t, Tok::Punct(',' | '}')));
            }
            item.variants.push(variant);
            if self.at_punct(',') {
                self.bump();
            }
        }
        item.end_line = self.cur_line();
        self.bump(); // `}`
        Some(item)
    }

    fn finish_impl(&mut self, line: u32) -> Option<Item> {
        self.bump(); // `impl`
        let mut item = Item::new(ItemKind::Impl, line);
        self.skip_generics();
        let first = self.text_until(true, |t| {
            matches!(t, Tok::Punct('{')) || matches!(t, Tok::Ident(k) if k == "for" || k == "where")
        });
        if self.cur_ident() == Some("for") {
            self.bump();
            item.trait_name = Some(first);
            item.name = self.text_until(true, |t| {
                matches!(t, Tok::Punct('{')) || matches!(t, Tok::Ident(k) if k == "where")
            });
        } else {
            item.name = first;
        }
        if self.cur_ident() == Some("where") {
            let _ = self.text_until(true, |t| matches!(t, Tok::Punct('{')));
        }
        if self.at_punct('{') {
            self.bump();
            item.children = self.items(true);
            item.end_line = self.cur_line();
            self.bump(); // `}`
        }
        Some(item)
    }

    fn finish_trait(&mut self, line: u32) -> Option<Item> {
        self.bump(); // `trait`
        let mut item = Item::new(ItemKind::Trait, line);
        item.name = self.cur_ident()?.to_string();
        self.bump();
        let _ = self.text_until(true, |t| matches!(t, Tok::Punct('{' | ';')));
        if self.at_punct('{') {
            self.bump();
            item.children = self.items(true);
            item.end_line = self.cur_line();
            self.bump(); // `}`
        } else {
            item.end_line = self.cur_line();
            self.bump();
        }
        Some(item)
    }

    fn finish_static_const(&mut self, line: u32, is_static: bool) -> Option<Item> {
        self.bump(); // `static` | `const`
        let kind = if is_static {
            ItemKind::Static
        } else {
            ItemKind::Const
        };
        let mut item = Item::new(kind, line);
        if is_static && self.cur_ident() == Some("mut") {
            item.is_mut_static = true;
            self.bump();
        }
        // `const _: () = …` anonymous consts use `_`, still an ident.
        item.name = self.cur_ident()?.to_string();
        self.bump();
        if self.at_punct(':') {
            self.bump();
            item.ty = Some(self.text_until(true, |t| matches!(t, Tok::Punct('=' | ';'))));
        }
        if self.at_punct('=') {
            self.bump();
            item.init = Some(self.text_until(false, |t| matches!(t, Tok::Punct(';'))));
        }
        item.end_line = self.cur_line();
        self.bump(); // `;`
        Some(item)
    }

    fn finish_type_alias(&mut self, line: u32) -> Option<Item> {
        self.bump(); // `type`
        let mut item = Item::new(ItemKind::TypeAlias, line);
        item.name = self.cur_ident()?.to_string();
        self.bump();
        self.skip_generics();
        if self.at_punct('=') {
            self.bump();
            item.ty = Some(self.text_until(true, |t| matches!(t, Tok::Punct(';'))));
        } else {
            let _ = self.text_until(true, |t| matches!(t, Tok::Punct(';')));
        }
        item.end_line = self.cur_line();
        self.bump(); // `;`
        Some(item)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> Vec<Item> {
        parse_items(src, &lex(src))
    }

    #[test]
    fn struct_fields_keep_names_types_and_order() {
        let items = parse(
            "pub struct PersistedGroup {\n\
             \x20   pub key: SimilarityKey,\n\
             \x20   pub estimate_kb: f64,\n\
             \x20   pub recent: Vec<u64>,\n\
             }\n",
        );
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].kind, ItemKind::Struct);
        assert_eq!(items[0].name, "PersistedGroup");
        let fields: Vec<_> = items[0]
            .fields
            .iter()
            .map(|f| (f.name.as_str(), f.ty.as_str()))
            .collect();
        assert_eq!(
            fields,
            vec![
                ("key", "SimilarityKey"),
                ("estimate_kb", "f64"),
                ("recent", "Vec<u64>"),
            ]
        );
    }

    #[test]
    fn tuple_structs_and_references() {
        let items = parse("struct Wrapper<'a>(pub &'a mut Vec<u8>, usize);");
        assert_eq!(items[0].fields.len(), 2);
        assert_eq!(items[0].fields[0].name, "0");
        assert_eq!(items[0].fields[0].ty, "&'a mut Vec<u8>");
        assert_eq!(items[0].fields[1].ty, "usize");
    }

    #[test]
    fn enum_variants_with_payloads() {
        let items = parse(
            "pub enum SnapshotState {\n\
             \x20   SuccessiveV1 { groups: Vec<PersistedGroup> },\n\
             \x20   LastInstanceV1 { groups: Vec<PersistedLastGroup> },\n\
             \x20   Unit,\n\
             \x20   Pair(u32, String),\n\
             }\n",
        );
        let e = &items[0];
        assert_eq!(e.kind, ItemKind::Enum);
        let names: Vec<_> = e.variants.iter().map(|v| v.name.as_str()).collect();
        assert_eq!(
            names,
            vec!["SuccessiveV1", "LastInstanceV1", "Unit", "Pair"]
        );
        assert_eq!(e.variants[0].fields[0].ty, "Vec<PersistedGroup>");
        assert_eq!(e.variants[3].fields[1].ty, "String");
    }

    #[test]
    fn impl_trait_for_type_and_children() {
        let items = parse(
            "impl ResourceEstimator for Successive {\n\
             \x20   fn estimate(&mut self, job: &Job) -> u64 { self.inner() }\n\
             \x20   fn observe(&mut self) {}\n\
             }\n\
             impl ServiceShard {\n\
             \x20   pub fn stats(&self) -> &ShardStats { &self.stats }\n\
             }\n",
        );
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].kind, ItemKind::Impl);
        assert_eq!(items[0].trait_name.as_deref(), Some("ResourceEstimator"));
        assert_eq!(items[0].name, "Successive");
        let fns: Vec<_> = items[0].children.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(fns, vec!["estimate", "observe"]);
        assert_eq!(items[1].trait_name, None);
        assert_eq!(items[1].name, "ServiceShard");
        assert!(items[1].children[0].body.is_some());
    }

    #[test]
    fn generic_impl_with_arrow_in_bounds() {
        let items = parse(
            "impl<F: Fn(u32) -> bool> Filter for Pred<F> where F: Clone {\n\
             \x20   fn test(&self) {}\n\
             }\n",
        );
        assert_eq!(items[0].trait_name.as_deref(), Some("Filter"));
        assert_eq!(items[0].name, "Pred<F>");
        assert_eq!(items[0].children.len(), 1);
    }

    #[test]
    fn statics_and_consts() {
        let items = parse(
            "static mut COUNTER: u64 = 0;\n\
             pub const FORMAT_VERSION: u32 = 1;\n\
             pub const MAGIC: [u8; 4] = *b\"RSNP\";\n",
        );
        assert_eq!(items[0].kind, ItemKind::Static);
        assert!(items[0].is_mut_static);
        assert_eq!(items[1].kind, ItemKind::Const);
        assert_eq!(items[1].name, "FORMAT_VERSION");
        assert_eq!(items[1].ty.as_deref(), Some("u32"));
        assert_eq!(items[1].init.as_deref(), Some("1"));
        assert!(!items[1].is_mut_static);
        assert_eq!(items[2].ty.as_deref(), Some("[u8;4]"));
    }

    #[test]
    fn nested_mods_and_cfg_test() {
        let items = parse(
            "mod outer {\n\
             \x20   pub fn visible() {}\n\
             \x20   #[cfg(test)]\n\
             \x20   mod tests {\n\
             \x20       fn helper() {}\n\
             \x20   }\n\
             }\n",
        );
        let outer = &items[0];
        assert_eq!(outer.kind, ItemKind::Mod);
        assert_eq!(outer.children.len(), 2);
        assert!(outer.children[1].is_cfg_test());
        assert_eq!(outer.children[1].children[0].name, "helper");
    }

    #[test]
    fn doc_state_is_tracked() {
        let items = parse(
            "/// Documented.\n\
             pub fn a() {}\n\
             pub fn b() {}\n",
        );
        assert!(items[0].has_doc);
        assert!(!items[1].has_doc);
    }

    #[test]
    fn fn_body_ranges_cover_call_sites() {
        let src = "fn caller() { helper(); other::call(2) }\nfn helper() {}\n";
        let lexed = lex(src);
        let items = parse_items(src, &lexed);
        let (start, end) = items[0].body.expect("body range");
        let idents: Vec<_> = lexed.tokens[start..end]
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Ident(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(idents, vec!["helper", "other", "call"]);
        assert!(items[1].body.expect("body").0 > end);
    }

    #[test]
    fn unrecognised_constructs_do_not_desync() {
        let items = parse(
            "thread_local! { static TL: u32 = 0; }\n\
             extern \"C\" { fn c_side(); }\n\
             use std::collections::BTreeMap;\n\
             macro_rules! m { () => {}; }\n\
             struct After { x: u32 }\n",
        );
        let after = items.iter().find(|i| i.name == "After").expect("After");
        assert_eq!(after.fields[0].name, "x");
        assert!(!items.iter().any(|i| i.name == "TL"));
    }

    #[test]
    fn enclosing_reports_fn_and_impl() {
        let src = "impl Engine {\n\
                   \x20   fn new() -> Engine {\n\
                   \x20       Engine {}\n\
                   \x20   }\n\
                   }\n";
        let items = parse(src);
        let path = enclosing(&items, 3);
        assert_eq!(path.len(), 2);
        assert_eq!(path[0].name, "Engine");
        assert_eq!(path[0].kind, ItemKind::Impl);
        assert_eq!(path[1].name, "new");
    }

    #[test]
    fn type_head_strips_paths_and_generics() {
        assert_eq!(type_head("Vec<PersistedGroup>"), "Vec");
        assert_eq!(
            type_head("resmatch_core::snapshot::SnapshotState"),
            "SnapshotState"
        );
        assert_eq!(type_head("&'a mut ServiceShard"), "ServiceShard");
        assert_eq!(type_head("&mut ServiceShard"), "ServiceShard");
    }
}
