//! End-to-end checks on synthetic workspaces: baseline → check round
//! trips clean, an injected violation fails `check` with a
//! `file:line:rule` diagnostic, and the observer-events rule catches a
//! declared-but-dead event. The binary itself is exercised for exit codes.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

use resmatch_lint::{baseline, run_check, write_baseline};

/// Minimal clean crate root (hygiene-satisfying for non-API crates).
const CLEAN_ROOT: &str = "//! Fixture crate.\n#![forbid(unsafe_code)]\n\npub fn ok() {}\n";

fn temp_workspace(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("resmatch-lint-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create temp workspace");
    fs::write(dir.join("Cargo.toml"), "[workspace]\n").expect("write Cargo.toml");
    fs::create_dir_all(dir.join("crates")).expect("create crates/");
    dir
}

fn write_crate_file(root: &Path, rel: &str, content: &str) {
    let path = root.join(rel);
    fs::create_dir_all(path.parent().expect("rel has a parent")).expect("mkdir");
    fs::write(path, content).expect("write source");
}

#[test]
fn baseline_then_check_round_trips_clean() {
    let root = temp_workspace("roundtrip");
    write_crate_file(
        &root,
        "crates/foo/src/lib.rs",
        &format!(
            "{CLEAN_ROOT}\npub fn a(o: Option<u32>) -> u32 {{ o.unwrap() }}\n\
                  pub fn b(o: Option<u32>) -> u32 {{ o.unwrap() }}\n"
        ),
    );

    // Two panic sites, no baseline yet: check must fail.
    let before = run_check(&root).expect("scan runs");
    assert!(!before.is_clean());
    assert_eq!(before.panic_total, 2);

    // Baseline, then check: clean, and the ratchet file parses back.
    let counts = write_baseline(&root).expect("baseline writes");
    assert_eq!(counts.get("crates/foo/src/lib.rs"), Some(&2));
    let text = fs::read_to_string(root.join(baseline::BASELINE_FILE)).expect("baseline exists");
    assert_eq!(baseline::parse(&text).expect("parses"), counts);
    let after = run_check(&root).expect("scan runs");
    assert!(after.is_clean(), "{after:?}");

    let _ = fs::remove_dir_all(&root);
}

#[test]
fn injected_violation_fails_check_with_located_diagnostic() {
    let root = temp_workspace("inject");
    write_crate_file(&root, "crates/foo/src/lib.rs", CLEAN_ROOT);
    write_baseline(&root).expect("baseline writes");
    assert!(run_check(&root).expect("scan runs").is_clean());

    // Inject one unwrap past the (zero) baseline.
    write_crate_file(
        &root,
        "crates/foo/src/lib.rs",
        &format!("{CLEAN_ROOT}\npub fn c(o: Option<u32>) -> u32 {{ o.unwrap() }}\n"),
    );
    let outcome = run_check(&root).expect("scan runs");
    assert!(!outcome.is_clean());
    assert_eq!(outcome.regressed_files.len(), 1);
    assert_eq!(outcome.panic_regressions.len(), 1);
    let v = &outcome.panic_regressions[0];
    assert_eq!(v.path, "crates/foo/src/lib.rs");
    assert_eq!(v.line, 6);
    let rendered = resmatch_lint::render_outcome(&root, &outcome);
    assert!(
        rendered.contains("error[panic-free]") && rendered.contains("crates/foo/src/lib.rs:6:"),
        "diagnostic must carry file:line:rule, got:\n{rendered}"
    );

    let _ = fs::remove_dir_all(&root);
}

#[test]
fn burn_down_shows_stale_baseline_note_and_stays_clean() {
    let root = temp_workspace("burndown");
    write_crate_file(
        &root,
        "crates/foo/src/lib.rs",
        &format!("{CLEAN_ROOT}\npub fn a(o: Option<u32>) -> u32 {{ o.unwrap() }}\n"),
    );
    write_baseline(&root).expect("baseline writes");

    // Burn the site down; check stays clean but points at the stale ratchet.
    write_crate_file(&root, "crates/foo/src/lib.rs", CLEAN_ROOT);
    let outcome = run_check(&root).expect("scan runs");
    assert!(outcome.is_clean());
    assert_eq!(outcome.stale_baseline.len(), 1);
    let rendered = resmatch_lint::render_outcome(&root, &outcome);
    assert!(rendered.contains("baseline"), "{rendered}");

    let _ = fs::remove_dir_all(&root);
}

/// The observer fixtures declare `on_beta` without an emission site.
fn write_observer_workspace(root: &Path, engine_extra: &str) {
    let fixtures = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/observer_events");
    let read = |name: &str| {
        fs::read_to_string(fixtures.join(name))
            .unwrap_or_else(|e| panic!("fixture {name} unreadable: {e}"))
    };
    write_crate_file(
        root,
        "crates/sim/src/lib.rs",
        "//! Fixture sim crate.\n#![deny(missing_docs)]\n#![forbid(unsafe_code)]\n\npub fn ok() {}\n",
    );
    write_crate_file(root, "crates/sim/src/observer.rs", &read("observer.rs"));
    write_crate_file(
        root,
        "crates/sim/src/engine.rs",
        &format!("{}{engine_extra}", read("engine.rs")),
    );
    write_crate_file(root, "crates/sim/src/experiment.rs", &read("experiment.rs"));
}

#[test]
fn dead_observer_event_fails_check_until_wired() {
    let root = temp_workspace("observer");
    write_observer_workspace(&root, "");
    write_baseline(&root).expect("baseline writes");

    let outcome = run_check(&root).expect("scan runs");
    let dead: Vec<_> = outcome
        .violations
        .iter()
        .filter(|v| v.rule == resmatch_lint::rules::Rule::ObserverEvents)
        .collect();
    assert_eq!(dead.len(), 1, "{:?}", outcome.violations);
    assert!(dead[0].msg.contains("on_beta"));
    assert_eq!(dead[0].path, "crates/sim/src/observer.rs");

    // Wire the emission; the rule goes quiet.
    write_observer_workspace(
        &root,
        "\npub fn drive_beta(o: &mut dyn crate::observer::SimObserver) { o.on_beta(); }\n",
    );
    let outcome = run_check(&root).expect("scan runs");
    assert!(outcome.is_clean(), "{outcome:?}");

    let _ = fs::remove_dir_all(&root);
}

#[test]
fn binary_exits_nonzero_on_violation_and_zero_when_clean() {
    let root = temp_workspace("exitcode");
    write_crate_file(
        &root,
        "crates/foo/src/lib.rs",
        &format!("{CLEAN_ROOT}\npub fn c(o: Option<u32>) -> u32 {{ o.unwrap() }}\n"),
    );
    let bin = env!("CARGO_BIN_EXE_resmatch-lint");
    let run = |args: &[&str]| {
        Command::new(bin)
            .args(args)
            .arg("--root")
            .arg(&root)
            .output()
            .expect("binary runs")
    };
    let fail = run(&["check"]);
    assert_eq!(fail.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&fail.stdout).contains("error[panic-free]"));

    assert_eq!(run(&["baseline"]).status.code(), Some(0));
    let pass = run(&["check"]);
    assert_eq!(pass.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&pass.stdout).contains("lint clean"));

    // explain works without a workspace at all.
    let explain = Command::new(bin)
        .args(["explain", "panic-free"])
        .output()
        .expect("binary runs");
    assert_eq!(explain.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&explain.stdout).contains("invariant:"));

    let _ = fs::remove_dir_all(&root);
}
