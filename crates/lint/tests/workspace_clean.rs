//! Tier-1 guard: the real workspace must pass `resmatch-lint check`.
//!
//! This is the same gate CI runs (`cargo run -p resmatch-lint -- check`),
//! folded into `cargo test` so a violation fails the ordinary test loop
//! too — nothing lands with a determinism leak, a fresh panic site past
//! the ratchet, or a dead observer event.

use std::path::PathBuf;

#[test]
fn real_workspace_is_lint_clean() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("crates/lint sits two levels under the workspace root")
        .to_path_buf();
    let outcome = resmatch_lint::run_check(&root).expect("scan runs");
    assert!(
        outcome.is_clean(),
        "workspace has lint violations; run `cargo run -p resmatch-lint -- check` \
         for details:\n{}",
        resmatch_lint::render_outcome(&root, &outcome)
    );
    // The ratchets only go down: if either number shrinks, regenerate the
    // baselines in the same change (`cargo run -p resmatch-lint -- baseline`).
    assert_eq!(
        outcome.panic_total, outcome.baseline_total,
        "panic-site count diverged from lint-baseline.txt; regenerate the baseline"
    );
    assert_eq!(
        outcome.alloc_total, outcome.alloc_baseline_total,
        "hot-path allocation count diverged from lint-alloc-baseline.txt; \
         regenerate the baseline"
    );
    // The committed snapshot fingerprint matches the tree exactly: a
    // version-bump note here means `-- schema` was not re-run.
    assert!(
        outcome.notes.is_empty(),
        "schema gate left advisory notes: {:?}",
        outcome.notes
    );
}
