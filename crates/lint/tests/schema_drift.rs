//! End-to-end snapshot-schema drift gate on a synthetic workspace: a
//! field-type change through the codec fails `check` until the wire
//! version constant is bumped, and regenerating the fingerprint file
//! brings the gate back to silent.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

use resmatch_lint::rules::Rule;
use resmatch_lint::{run_check, write_baseline, write_schema};

const SERVICE_ROOT: &str =
    "//! Fixture service crate.\n#![deny(missing_docs)]\n#![forbid(unsafe_code)]\n\n\
     /// Placeholder.\npub fn ok() {}\n";

/// The fixture codec, parameterised on the version literal and one field's
/// type so tests can drift the wire format deliberately.
fn codec_source(version: u32, mean_ty: &str) -> String {
    format!(
        "//! Fixture snapshot codec.\n\n\
         /// Wire version.\n\
         pub const FORMAT_VERSION: u32 = {version};\n\n\
         /// Snapshot root.\n\
         pub struct SnapshotDocument {{\n\
         \x20   /// Estimator id.\n\
         \x20   pub estimator: String,\n\
         \x20   /// Persisted state.\n\
         \x20   pub state: SnapshotState,\n\
         }}\n\n\
         /// Persisted state.\n\
         pub struct SnapshotState {{\n\
         \x20   /// Groups.\n\
         \x20   pub groups: Vec<PersistedGroup>,\n\
         }}\n\n\
         /// One group.\n\
         pub struct PersistedGroup {{\n\
         \x20   /// Key.\n\
         \x20   pub key: u64,\n\
         \x20   /// Mean runtime.\n\
         \x20   pub mean: {mean_ty},\n\
         }}\n"
    )
}

fn temp_workspace(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("resmatch-lint-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create temp workspace");
    fs::write(dir.join("Cargo.toml"), "[workspace]\n").expect("write Cargo.toml");
    fs::create_dir_all(dir.join("crates")).expect("create crates/");
    dir
}

fn write_crate_file(root: &Path, rel: &str, content: &str) {
    let path = root.join(rel);
    fs::create_dir_all(path.parent().expect("rel has a parent")).expect("mkdir");
    fs::write(path, content).expect("write source");
}

fn schema_violations(root: &Path) -> Vec<String> {
    run_check(root)
        .expect("scan runs")
        .violations
        .into_iter()
        .filter(|v| v.rule == Rule::SnapshotSchema)
        .map(|v| v.msg)
        .collect()
}

#[test]
fn drift_is_fatal_until_the_version_is_bumped() {
    let root = temp_workspace("schema-drift");
    write_crate_file(&root, "crates/service/src/lib.rs", SERVICE_ROOT);
    write_crate_file(&root, "crates/service/src/file.rs", &codec_source(1, "f64"));
    write_baseline(&root).expect("baseline writes");

    // No committed fingerprint yet: the gate demands one.
    let missing = schema_violations(&root);
    assert_eq!(missing.len(), 1, "{missing:?}");
    assert!(missing[0].contains("snapshot-schema.txt"), "{missing:?}");

    // Generate it; check goes clean.
    let written = write_schema(&root).expect("schema writes");
    assert!(written.is_some(), "snapshot types exist in the fixture");
    assert_eq!(schema_violations(&root), Vec::<String>::new());

    // Drift a persisted field's type without touching the version: fatal.
    write_crate_file(&root, "crates/service/src/file.rs", &codec_source(1, "u64"));
    let drifted = schema_violations(&root);
    assert_eq!(drifted.len(), 1, "{drifted:?}");
    assert!(drifted[0].contains("FORMAT_VERSION"), "{drifted:?}");

    // Bump the version alongside the drift: the violation downgrades to a
    // note (CI's `git diff` gate then forces the regenerated file in).
    write_crate_file(&root, "crates/service/src/file.rs", &codec_source(2, "u64"));
    let outcome = run_check(&root).expect("scan runs");
    assert!(outcome.is_clean(), "bumped drift must pass check");
    assert!(
        outcome.notes.iter().any(|n| n.contains("regenerate")),
        "{:?}",
        outcome.notes
    );

    // Regenerate: fingerprint file now records the new version, no notes.
    write_schema(&root).expect("schema rewrites");
    let text = fs::read_to_string(root.join("snapshot-schema.txt")).expect("committed file");
    assert!(text.contains("format-version: 2"), "{text}");
    assert!(text.contains("mean: u64"), "{text}");
    let outcome = run_check(&root).expect("scan runs");
    assert!(outcome.is_clean());
    assert!(outcome.notes.is_empty(), "{:?}", outcome.notes);

    let _ = fs::remove_dir_all(&root);
}

#[test]
fn schema_subcommand_writes_and_reports_the_fingerprint() {
    let root = temp_workspace("schema-subcmd");
    write_crate_file(&root, "crates/service/src/lib.rs", SERVICE_ROOT);
    write_crate_file(&root, "crates/service/src/file.rs", &codec_source(1, "f64"));

    let bin = env!("CARGO_BIN_EXE_resmatch-lint");
    let out = Command::new(bin)
        .args(["schema", "--root"])
        .arg(&root)
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("snapshot-schema.txt") && stdout.contains("fingerprint 0x"),
        "{stdout}"
    );
    assert!(root.join("snapshot-schema.txt").is_file());

    let _ = fs::remove_dir_all(&root);
}
