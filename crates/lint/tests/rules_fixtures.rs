//! Per-rule fixture tests: each fixture file marks its expected violation
//! sites with a `// flagged` comment, so the expectation is readable in the
//! fixture itself and the test just compares line sets.

use std::path::PathBuf;

use resmatch_lint::rules::{check_file, FileClass, FileKind, Rule};

fn fixture(rel: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(rel);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()))
}

fn lib_class(crate_name: &str) -> FileClass {
    FileClass {
        crate_name: crate_name.to_string(),
        kind: FileKind::Lib,
        is_crate_root: false,
    }
}

/// Lines carrying a `// flagged` marker, 1-based.
fn marked_lines(src: &str) -> Vec<u32> {
    src.lines()
        .enumerate()
        .filter(|(_, l)| l.contains("// flagged"))
        .map(|(i, _)| (i + 1) as u32)
        .collect()
}

fn lines_for(rule: Rule, src: &str, class: &FileClass) -> Vec<u32> {
    let mut lines: Vec<u32> = check_file("crates/x/src/f.rs", src, class)
        .into_iter()
        .filter(|v| v.rule == rule)
        .map(|v| v.line)
        .collect();
    lines.sort_unstable();
    lines
}

#[test]
fn determinism_fixture_sites() {
    let src = fixture("determinism/violations.rs");
    assert_eq!(
        lines_for(Rule::Determinism, &src, &lib_class("sim")),
        marked_lines(&src),
    );
}

#[test]
fn determinism_rule_is_scoped_to_engine_crates() {
    let src = fixture("determinism/violations.rs");
    // The same source in a non-engine crate (cli) raises nothing.
    assert_eq!(
        lines_for(Rule::Determinism, &src, &lib_class("cli")),
        vec![]
    );
    // And in bin code of an engine crate, nothing either.
    let bin = FileClass {
        crate_name: "sim".to_string(),
        kind: FileKind::Bin,
        is_crate_root: false,
    };
    assert_eq!(lines_for(Rule::Determinism, &src, &bin), vec![]);
}

#[test]
fn panic_free_fixture_sites() {
    let src = fixture("panic_free/violations.rs");
    // The rule applies to every crate's library code, engine or not.
    assert_eq!(
        lines_for(Rule::PanicFree, &src, &lib_class("stats")),
        marked_lines(&src),
    );
}

#[test]
fn float_cmp_fixture_sites() {
    let src = fixture("float_cmp/violations.rs");
    assert_eq!(
        lines_for(Rule::FloatCmp, &src, &lib_class("workload")),
        marked_lines(&src),
    );
    // stats is the approved comparison-helper crate: exempt.
    assert_eq!(lines_for(Rule::FloatCmp, &src, &lib_class("stats")), vec![]);
}

#[test]
fn crate_hygiene_fixture() {
    let missing = fixture("crate_hygiene/missing_attrs.rs");
    let clean = fixture("crate_hygiene/clean_root.rs");
    let root = |name: &str| FileClass {
        crate_name: name.to_string(),
        kind: FileKind::Lib,
        is_crate_root: true,
    };
    // A public-API crate root missing both attributes: two violations.
    assert_eq!(
        lines_for(Rule::CrateHygiene, &missing, &root("sim")).len(),
        2
    );
    // stats joined the documented-API tier (PR 4): both attributes.
    assert_eq!(
        lines_for(Rule::CrateHygiene, &missing, &root("stats")).len(),
        2
    );
    // A non-API crate only needs forbid(unsafe_code): one violation.
    assert_eq!(
        lines_for(Rule::CrateHygiene, &missing, &root("classad")).len(),
        1
    );
    // The clean root satisfies both tiers.
    assert_eq!(lines_for(Rule::CrateHygiene, &clean, &root("sim")), vec![]);
    assert_eq!(
        lines_for(Rule::CrateHygiene, &clean, &root("classad")),
        vec![]
    );
    // Non-root files are never checked for hygiene.
    assert_eq!(
        lines_for(Rule::CrateHygiene, &missing, &lib_class("sim")),
        vec![]
    );
}

#[test]
fn every_rule_has_an_explanation_and_round_trips_by_id() {
    for rule in Rule::all() {
        assert!(
            rule.explain().len() > 80,
            "{} explanation too thin",
            rule.id()
        );
        assert_eq!(Rule::from_id(rule.id()), Some(rule));
    }
    assert_eq!(Rule::from_id("no-such-rule"), None);
}
