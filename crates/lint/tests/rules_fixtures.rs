//! Per-rule fixture tests: each fixture file marks its expected violation
//! sites with a `// flagged` comment, so the expectation is readable in the
//! fixture itself and the test just compares line sets.

use std::path::PathBuf;

use resmatch_lint::rules::{check_file, shard_isolation, FileClass, FileKind, Rule};
use resmatch_lint::symbols::SourceFile;

fn fixture(rel: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(rel);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()))
}

fn lib_class(crate_name: &str) -> FileClass {
    FileClass {
        crate_name: crate_name.to_string(),
        kind: FileKind::Lib,
        is_crate_root: false,
    }
}

/// Lines carrying a `// flagged` marker, 1-based.
fn marked_lines(src: &str) -> Vec<u32> {
    src.lines()
        .enumerate()
        .filter(|(_, l)| l.contains("// flagged"))
        .map(|(i, _)| (i + 1) as u32)
        .collect()
}

fn lines_for(rule: Rule, src: &str, class: &FileClass) -> Vec<u32> {
    lines_for_at(rule, "crates/x/src/f.rs", src, class)
}

fn lines_for_at(rule: Rule, path: &str, src: &str, class: &FileClass) -> Vec<u32> {
    let mut lines: Vec<u32> = check_file(path, src, class)
        .into_iter()
        .filter(|v| v.rule == rule)
        .map(|v| v.line)
        .collect();
    lines.sort_unstable();
    lines
}

#[test]
fn determinism_fixture_sites() {
    let src = fixture("determinism/violations.rs");
    assert_eq!(
        lines_for(Rule::Determinism, &src, &lib_class("sim")),
        marked_lines(&src),
    );
}

#[test]
fn determinism_rule_is_scoped_to_engine_crates() {
    let src = fixture("determinism/violations.rs");
    // The same source in a non-engine crate (cli) raises nothing.
    assert_eq!(
        lines_for(Rule::Determinism, &src, &lib_class("cli")),
        vec![]
    );
    // And in bin code of an engine crate, nothing either.
    let bin = FileClass {
        crate_name: "sim".to_string(),
        kind: FileKind::Bin,
        is_crate_root: false,
    };
    assert_eq!(lines_for(Rule::Determinism, &src, &bin), vec![]);
}

#[test]
fn panic_free_fixture_sites() {
    let src = fixture("panic_free/violations.rs");
    // The rule applies to every crate's library code, engine or not.
    assert_eq!(
        lines_for(Rule::PanicFree, &src, &lib_class("stats")),
        marked_lines(&src),
    );
}

#[test]
fn float_cmp_fixture_sites() {
    let src = fixture("float_cmp/violations.rs");
    assert_eq!(
        lines_for(Rule::FloatCmp, &src, &lib_class("workload")),
        marked_lines(&src),
    );
    // stats is the approved comparison-helper crate: exempt.
    assert_eq!(lines_for(Rule::FloatCmp, &src, &lib_class("stats")), vec![]);
}

#[test]
fn crate_hygiene_fixture() {
    let missing = fixture("crate_hygiene/missing_attrs.rs");
    let clean = fixture("crate_hygiene/clean_root.rs");
    let root = |name: &str| FileClass {
        crate_name: name.to_string(),
        kind: FileKind::Lib,
        is_crate_root: true,
    };
    // A public-API crate root missing both attributes: two violations.
    assert_eq!(
        lines_for(Rule::CrateHygiene, &missing, &root("sim")).len(),
        2
    );
    // stats joined the documented-API tier (PR 4): both attributes.
    assert_eq!(
        lines_for(Rule::CrateHygiene, &missing, &root("stats")).len(),
        2
    );
    // classad joined the documented-API tier (PR 8): both attributes.
    assert_eq!(
        lines_for(Rule::CrateHygiene, &missing, &root("classad")).len(),
        2
    );
    // A non-API crate (the CLI) only needs forbid(unsafe_code): one.
    assert_eq!(
        lines_for(Rule::CrateHygiene, &missing, &root("cli")).len(),
        1
    );
    // The clean root satisfies both tiers.
    assert_eq!(lines_for(Rule::CrateHygiene, &clean, &root("sim")), vec![]);
    assert_eq!(lines_for(Rule::CrateHygiene, &clean, &root("cli")), vec![]);
    // Non-root files are never checked for hygiene.
    assert_eq!(
        lines_for(Rule::CrateHygiene, &missing, &lib_class("sim")),
        vec![]
    );
}

#[test]
fn hot_path_alloc_fixture_sites() {
    let src = fixture("hot_path_alloc/violations.rs");
    // Scanned under a hot-module path: every unexempted allocation flags.
    assert_eq!(
        lines_for_at(
            Rule::HotPathAlloc,
            "crates/sim/src/engine.rs",
            &src,
            &lib_class("sim"),
        ),
        marked_lines(&src),
    );
    // The same source outside the hot file set raises nothing.
    assert_eq!(
        lines_for_at(
            Rule::HotPathAlloc,
            "crates/sim/src/experiment.rs",
            &src,
            &lib_class("sim"),
        ),
        vec![]
    );
}

#[test]
fn shard_isolation_fixture_sites() {
    let files = vec![
        SourceFile::parse(
            "crates/service/src/service.rs".to_string(),
            fixture("shard_isolation/service.rs"),
        ),
        SourceFile::parse(
            "crates/service/src/registry.rs".to_string(),
            fixture("shard_isolation/registry.rs"),
        ),
    ];
    let violations = shard_isolation(&files);
    assert!(violations.iter().all(|v| v.rule == Rule::ShardIsolation));

    // All expected sites live in registry.rs; the shard's own impl is clean.
    let mut lines: Vec<u32> = violations
        .iter()
        .inspect(|v| assert_eq!(v.path, "crates/service/src/registry.rs", "{}", v.msg))
        .map(|v| v.line)
        .collect();
    lines.sort_unstable();
    assert_eq!(lines, marked_lines(&fixture("shard_isolation/registry.rs")));
}

#[test]
fn every_rule_has_an_explanation_and_round_trips_by_id() {
    for rule in Rule::all() {
        assert!(
            rule.explain().len() > 80,
            "{} explanation too thin",
            rule.id()
        );
        assert_eq!(Rule::from_id(rule.id()), Some(rule));
    }
    assert_eq!(Rule::from_id("no-such-rule"), None);
}
