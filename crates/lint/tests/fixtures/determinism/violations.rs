//! Determinism-rule fixture: each `flagged` marker below is a site the
//! rule must report; everything else must stay silent.

use std::collections::{HashMap, HashSet};

pub fn bad() {
    let _a: HashMap<u32, u32> = HashMap::new(); // flagged: random SipHash seed
    let _b: HashSet<u32> = HashSet::with_capacity(4); // flagged
    let _t = std::time::SystemTime::now(); // flagged: wall clock
    let _i = std::time::Instant::now(); // flagged: wall clock
    let _id = std::thread::current().id(); // flagged: thread identity
    let _v = std::env::var("HOME"); // flagged: host environment
}

pub fn good() {
    let _c: HashMap<u32, u32, FnvBuildHasher> = HashMap::default();
    let _d: std::collections::BTreeMap<u32, u32> = Default::default();
    // lint: allow(determinism): fixture-approved wall clock
    let _i = Instant::now();
}

#[cfg(test)]
mod tests {
    pub fn exempt() {
        let _x: super::HashMap<u32, u32> = super::HashMap::new();
        let _t = std::time::Instant::now();
    }
}
