//! Panic-freedom fixture: five sites the rule must report, plus shapes it
//! must leave alone (invariant-documented expects, macros, array repeats,
//! identifier indexing, and `#[cfg(test)]` code).

pub fn bad(xs: &[u32], o: Option<u32>) -> u32 {
    let a = o.unwrap(); // flagged
    let b = o.expect("present"); // flagged: undocumented expect
    if xs.is_empty() {
        panic!("empty"); // flagged
    }
    match a {
        0 => unreachable!(), // flagged
        _ => {}
    }
    xs[0] + b // flagged: literal index
}

pub fn good(xs: &[u32], o: Option<u32>, idx: usize) -> u32 {
    let a = o.expect("invariant: caller guarantees a value");
    let v = vec![0];
    let arr = [0; 4];
    xs.first().copied().unwrap_or(0) + a + arr[idx] + v.len() as u32
}

#[cfg(test)]
mod tests {
    #[test]
    fn exempt() {
        let xs = [1u32, 2];
        assert_eq!(xs[0], Some(1u32).unwrap());
    }
}
