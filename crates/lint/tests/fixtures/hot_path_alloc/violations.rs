//! hot-path-alloc fixture: flagged-comment markers give the expected sites.
//! The test scans this source as `crates/sim/src/engine.rs`, a hot module.

pub struct SimArena {
    scratch: Vec<u32>,
}

impl SimArena {
    pub fn grow(&mut self) {
        self.scratch = Vec::new(); // arena setup is the allocation surface: exempt
    }
}

pub struct Thing {
    items: Vec<u32>,
}

impl Thing {
    pub fn new() -> Thing {
        Thing { items: Vec::new() } // constructor-shaped fn (`new`): exempt
    }

    pub fn with_room(n: usize) -> Thing {
        let mut items = vec![0u32; n]; // `with_*` constructor: exempt
        items.clear();
        Thing { items }
    }

    pub fn from_parts(items: &[u32]) -> Thing {
        Thing { items: items.to_vec() } // `from_*` constructor: exempt
    }

    pub fn step(&mut self) {
        let scratch = Vec::new(); // flagged
        let boxed = Box::new(scratch); // flagged
        let ring: VecDeque<u32> = VecDeque::new(); // flagged
        drop((boxed, ring));
        let label = format!("step {}", self.items.len()); // flagged
        drop(label);
        let dup = self.items.clone(); // flagged
        drop(dup);
        let literal = vec![1u32, 2, 3]; // flagged
        drop(literal);
        let copied = self.items.to_vec(); // flagged
        drop(copied);
    }

    pub fn audited(&mut self) {
        // lint: allow(hot-path-alloc): once-per-run buffer, measured harmless
        let v: Vec<u32> = Vec::new();
        drop(v);
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        let v = vec![1u32];
        assert_eq!(v.clone().len(), 1);
    }
}
