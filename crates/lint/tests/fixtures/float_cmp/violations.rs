//! Float-comparison fixture: three sites the rule must report; ordered
//! comparisons, integer comparisons, tuple indices, and allow-documented
//! exact checks stay silent.

pub fn bad(x: f64, y: f64) -> bool {
    let a = x == 1.0; // flagged
    let b = 0.5 != y; // flagged
    let c = x == -2.5; // flagged: unary minus on the literal
    a && b && c
}

pub fn good(x: f64, t: (f64, u32)) -> bool {
    let a = x <= 1.0;
    let b = x >= 0.5;
    let c = t.1 == 2;
    // lint: allow(float-cmp): exact zero-divisor guard
    let d = x == 0.0;
    a && b && c && d
}
