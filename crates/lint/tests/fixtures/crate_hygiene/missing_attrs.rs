//! A crate root with neither `#![forbid(unsafe_code)]` nor
//! `#![deny(missing_docs)]`.

pub fn exported() {}
