//! A crate root carrying both hygiene attributes.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub fn exported() {}
