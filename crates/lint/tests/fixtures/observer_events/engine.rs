//! Fixture engine: emits `on_alpha` but not `on_beta`.

pub fn drive(o: &mut dyn crate::observer::SimObserver) {
    o.on_alpha();
}
