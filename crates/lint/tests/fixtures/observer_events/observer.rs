//! Observer-events fixture trait declarations: `on_beta` is declared but
//! never emitted by the fixture engine, so the rule must flag it.

pub trait SimObserver {
    fn on_alpha(&mut self) {}
    fn on_beta(&mut self) {}
}

pub trait SweepObserver {
    fn on_gamma(&self) {}
}
