//! Fixture sweep driver: emits every `SweepObserver` method.

pub fn sweep(o: &dyn crate::observer::SweepObserver) {
    o.on_gamma();
}
