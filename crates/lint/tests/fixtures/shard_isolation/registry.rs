//! shard-isolation fixture: every violation class in one file, with
//! flagged-comment markers on the expected sites.

static mut LIVE_SHARDS: u64 = 0; // flagged

static FLUSH_LOG: Mutex<Vec<u64>> = Mutex::new(Vec::new()); // flagged

// lint: allow(shard-isolation): read-only metrics snapshot, audited in PR 7
static METRICS: Mutex<u64> = Mutex::new(0);

static SHARD_COUNT: u64 = 4;

pub fn record_flush() {
    let sink: &Mutex<Vec<u64>> = &FLUSH_LOG; // flagged
    drop(sink.lock());
}

pub fn cold_audit() {
    let sink: &Mutex<Vec<u64>> = &FLUSH_LOG;
    drop(sink.lock());
}

pub fn poke(shard: &mut ServiceShard) {
    shard.stats += 1; // flagged
    shard.flush_pending();
}
