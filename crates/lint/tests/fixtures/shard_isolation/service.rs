//! shard-isolation fixture: the shard type and its hot estimate path.
//! Field accesses here sit inside `impl ServiceShard` and are exempt.

pub struct ServiceShard {
    queue: Vec<u64>,
    stats: u64,
}

impl ServiceShard {
    pub fn estimate(&mut self) -> u64 {
        self.flush_pending();
        self.stats
    }

    fn flush_pending(&mut self) {
        self.queue.clear();
        record_flush();
    }
}
