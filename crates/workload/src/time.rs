//! Simulation time.
//!
//! SWF traces record integer seconds; the simulator needs finer resolution
//! because an under-provisioned job fails at a point drawn uniformly inside
//! its runtime. [`Time`] is a millisecond-resolution fixed-point instant —
//! integer arithmetic keeps event ordering exact and simulations
//! bit-reproducible across platforms, which f64 timestamps would not.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// An instant (or duration) in simulation time, in milliseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Time(u64);

impl Time {
    /// Time zero.
    pub const ZERO: Time = Time(0);
    /// The farthest representable instant.
    pub const MAX: Time = Time(u64::MAX);

    /// Construct from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        Time(secs * 1000)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        Time(millis)
    }

    /// Construct from fractional seconds, rounding to the nearest
    /// millisecond. Negative or non-finite inputs clamp to zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        if !secs.is_finite() || secs <= 0.0 {
            return Time::ZERO;
        }
        Time((secs * 1000.0).round() as u64)
    }

    /// Milliseconds since time zero.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Whole seconds (truncating).
    pub const fn as_secs(self) -> u64 {
        self.0 / 1000
    }

    /// Fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// Saturating subtraction: `self - other`, floored at zero.
    pub fn saturating_sub(self, other: Time) -> Time {
        Time(self.0.saturating_sub(other.0))
    }

    /// Checked addition.
    pub fn checked_add(self, other: Time) -> Option<Time> {
        self.0.checked_add(other.0).map(Time)
    }

    /// Scale a duration by a non-negative factor, rounding to the nearest
    /// millisecond (used for load rescaling of inter-arrival gaps).
    pub fn scale(self, factor: f64) -> Time {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "scale factor must be >= 0"
        );
        Time((self.0 as f64 * factor).round() as u64)
    }
}

impl Add for Time {
    type Output = Time;
    fn add(self, rhs: Time) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign for Time {
    fn add_assign(&mut self, rhs: Time) {
        self.0 += rhs.0;
    }
}

impl Sub for Time {
    type Output = Time;
    /// # Panics
    /// Panics in debug builds on underflow; use [`Time::saturating_sub`] when
    /// the ordering is not guaranteed.
    fn sub(self, rhs: Time) -> Time {
        Time(self.0 - rhs.0)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{:03}s", self.0 / 1000, self.0 % 1000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        let t = Time::from_secs(90);
        assert_eq!(t.as_secs(), 90);
        assert_eq!(t.as_millis(), 90_000);
        assert_eq!(Time::from_millis(1500).as_secs(), 1);
        assert!((Time::from_millis(1500).as_secs_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn from_secs_f64_rounds_and_clamps() {
        assert_eq!(Time::from_secs_f64(1.2345), Time::from_millis(1235));
        assert_eq!(Time::from_secs_f64(-3.0), Time::ZERO);
        assert_eq!(Time::from_secs_f64(f64::NAN), Time::ZERO);
    }

    #[test]
    fn arithmetic() {
        let a = Time::from_secs(5);
        let b = Time::from_secs(3);
        assert_eq!(a + b, Time::from_secs(8));
        assert_eq!(a - b, Time::from_secs(2));
        assert_eq!(b.saturating_sub(a), Time::ZERO);
        let mut c = a;
        c += b;
        assert_eq!(c, Time::from_secs(8));
    }

    #[test]
    fn scaling() {
        assert_eq!(Time::from_secs(10).scale(0.5), Time::from_secs(5));
        assert_eq!(Time::from_secs(10).scale(0.0), Time::ZERO);
        assert_eq!(Time::from_millis(3).scale(1.5), Time::from_millis(5)); // 4.5 rounds up
    }

    #[test]
    #[should_panic(expected = "scale factor must be >= 0")]
    fn scale_rejects_negative() {
        let _ = Time::from_secs(1).scale(-1.0);
    }

    #[test]
    fn ordering_and_display() {
        assert!(Time::from_millis(999) < Time::from_secs(1));
        assert_eq!(Time::from_millis(1234).to_string(), "1.234s");
    }

    #[test]
    fn checked_add_detects_overflow() {
        assert!(Time::MAX.checked_add(Time::from_millis(1)).is_none());
        assert_eq!(
            Time::from_secs(1).checked_add(Time::from_secs(1)),
            Some(Time::from_secs(2))
        );
    }
}
