//! Calibrated synthetic LANL-CM5-like workload generation.
//!
//! The real LANL CM5 trace cannot ship with this repository, so experiments
//! run on a synthetic trace engineered to match the statistics the paper
//! *reports about* that trace — which are exactly the properties its results
//! depend on:
//!
//! - **Figure 1**: ~32.8% of jobs request at least twice the memory they use,
//!   with over-provisioning ratios spanning two orders of magnitude and a
//!   log-linear histogram (the paper fits it with R² = 0.69 — imperfect
//!   because ratios cluster per similarity group, which this generator
//!   reproduces by drawing the ratio *per class*, not per job).
//! - **Figure 3**: ~9,885 similarity groups over 122,055 jobs with a
//!   heavy-tailed size distribution; groups of ≥10 jobs are ~19% of groups
//!   but hold ~83% of jobs. A truncated power law on class sizes
//!   (`size_tau` ≈ 1.65, truncated at 800) lands in that regime.
//! - **Figure 8's node-count weighting**: the paper explains the
//!   no-improvement band (second pool ≤ 15 MB) by the node counts of
//!   benefiting jobs. The generator therefore correlates over-provisioning
//!   with job size: *heavy* classes (≥256 nodes, most of the node-seconds)
//!   get mild ratios so their usage falls in the 16–30 MB band, while
//!   *light* classes carry the extreme ratios. Usage below ~16 MB thus comes
//!   almost exclusively from small jobs, reproducing the paper's band
//!   structure.
//!
//! Generation is fully deterministic given a seed.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::job::{Job, JobBuilder, JobStatus, Workload};
use crate::time::Time;

/// One megabyte in KB, the unit memory sizes below are quoted in.
pub const MB: u64 = 1024;

/// Configuration for the CM5-like generator. Defaults reproduce the paper's
/// trace-scale statistics; tests and examples shrink `jobs`.
#[derive(Debug, Clone)]
pub struct Cm5Config {
    /// Number of jobs to generate (paper trace: 122,055).
    pub jobs: usize,
    /// User population size.
    pub users: u32,
    /// Application-number population size (keys may collide across classes,
    /// deliberately: collisions merge distinct classes into one similarity
    /// group, exercising the estimator's wide-range behaviour).
    pub apps: u32,
    /// Trace span (paper trace: about two years).
    pub span: Time,
    /// Physical node memory of the original homogeneous machine, KB
    /// (CM-5: 32 MB). Requests never exceed this.
    pub machine_mem_kb: u64,
    /// Probability that a class requests exactly what it uses (ratio 1).
    pub exact_request_fraction: f64,
    /// Rate of the exponential drawn in log2-space for light-class ratios;
    /// smaller → heavier over-provisioning tail.
    pub light_ratio_log2_rate: f64,
    /// Fraction of classes that are *heavy* (large node counts, mild
    /// ratios).
    pub heavy_class_fraction: f64,
    /// Exponent of the truncated power law on class sizes.
    pub size_tau: f64,
    /// Largest class size.
    pub max_class_size: usize,
    /// Fraction of classes whose members' usage varies (non-zero similarity
    /// range).
    pub jitter_class_fraction: f64,
    /// Amplitude of the diurnal arrival cycle in `[0, 1)`: 0 is a plain
    /// Poisson process; larger values concentrate arrivals in "daytime"
    /// hours the way production traces do. Mean load is unchanged.
    pub diurnal_amplitude: f64,
}

impl Default for Cm5Config {
    fn default() -> Self {
        Cm5Config {
            jobs: 122_055,
            users: 210,
            apps: 600,
            span: Time::from_secs(2 * 365 * 24 * 3600),
            machine_mem_kb: 32 * MB,
            exact_request_fraction: 0.25,
            light_ratio_log2_rate: 0.70,
            heavy_class_fraction: 0.15,
            size_tau: 1.65,
            max_class_size: 800,
            jitter_class_fraction: 0.30,
            diurnal_amplitude: 0.0,
        }
    }
}

/// A sampled similarity class: the latent structure the estimator later
/// rediscovers from (user, app, requested memory).
#[derive(Debug, Clone)]
struct ClassSpec {
    user: u32,
    app: u32,
    nodes: u32,
    requested_mem_kb: u64,
    base_used_mem_kb: u64,
    /// Relative spread of usage within the class (the similarity range).
    usage_jitter: f64,
    base_runtime_s: f64,
    size: usize,
}

/// Inverse-transform sampler over `P(k) ∝ k^-tau`, `k = 1..=max`.
struct PowerLawSizes {
    cdf: Vec<f64>,
}

impl PowerLawSizes {
    fn new(tau: f64, max: usize) -> Self {
        assert!(max >= 1);
        let mut cdf = Vec::with_capacity(max);
        let mut acc = 0.0;
        for k in 1..=max {
            acc += (k as f64).powf(-tau);
            cdf.push(acc);
        }
        let total = *cdf.last().expect("invariant: max >= 1 is asserted above");
        for v in &mut cdf {
            *v /= total;
        }
        PowerLawSizes { cdf }
    }

    fn sample(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.random();
        self.cdf.partition_point(|&c| c < u) + 1
    }
}

fn pick_weighted<T: Copy>(rng: &mut StdRng, table: &[(T, f64)]) -> T {
    let total: f64 = table.iter().map(|(_, w)| w).sum();
    let mut u: f64 = rng.random::<f64>() * total;
    for &(value, weight) in table {
        if u < weight {
            return value;
        }
        u -= weight;
    }
    table
        .last()
        .expect("invariant: weight tables are non-empty constants")
        .0
}

/// CM-5 partition sizes for light (small) classes.
const LIGHT_NODES: &[(u32, f64)] = &[(32, 0.50), (64, 0.30), (128, 0.20)];
/// Partition sizes for heavy classes. The 1024-node weight is tiny so that,
/// like the paper's trace, only a handful of full-machine jobs exist (the
/// paper removes six of them before simulating).
const HEAVY_NODES: &[(u32, f64)] = &[(256, 0.55), (512, 0.4497), (1024, 0.0003)];

/// Requested memory (KB) for light classes: concentrated at the machine
/// limit with a spread of smaller powers of two, echoing how users on a
/// 32 MB-node machine asked for memory.
fn light_request_table(machine_mem_kb: u64) -> Vec<(u64, f64)> {
    vec![
        (machine_mem_kb, 0.35),
        (machine_mem_kb * 3 / 4, 0.10),
        (machine_mem_kb / 2, 0.20),
        (machine_mem_kb / 4, 0.15),
        (machine_mem_kb / 8, 0.10),
        (machine_mem_kb / 16, 0.05),
        (machine_mem_kb / 32, 0.05),
    ]
}

/// Requested memory for heavy classes: almost always the full machine —
/// large parallel runs on the CM-5 asked for whole-node memory.
fn heavy_request_table(machine_mem_kb: u64) -> Vec<(u64, f64)> {
    vec![(machine_mem_kb, 0.90), (machine_mem_kb * 3 / 4, 0.10)]
}

fn sample_class(cfg: &Cm5Config, rng: &mut StdRng, size: usize) -> ClassSpec {
    let heavy = rng.random::<f64>() < cfg.heavy_class_fraction;
    let nodes = if heavy {
        pick_weighted(rng, HEAVY_NODES)
    } else {
        pick_weighted(rng, LIGHT_NODES)
    };
    let requested_mem_kb = if heavy {
        pick_weighted(rng, &heavy_request_table(cfg.machine_mem_kb))
    } else {
        pick_weighted(rng, &light_request_table(cfg.machine_mem_kb))
    };

    // Heavy classes request whole-node memory defensively and rarely use
    // it all, so far fewer of them request exactly what they use.
    let exact_fraction = if heavy {
        cfg.exact_request_fraction * 0.5
    } else {
        cfg.exact_request_fraction
    };
    let exact = rng.random::<f64>() < exact_fraction;
    let ratio = if exact {
        1.0
    } else if heavy {
        // Mild over-provisioning: usage stays in the upper half of the
        // request, putting heavy-job usage in the ~16-24 MB band for 32 MB
        // requests (the Figure 8 improvement band).
        let u: f64 = rng.random();
        // Log-uniform in [1.25, 2.0].
        (1.25f64.ln() + u * (2.0f64.ln() - 1.25f64.ln())).exp()
    } else {
        // Mixture of two exponentials in log2-space, spanning two orders of
        // magnitude like Figure 1. A single rate would make the histogram
        // perfectly log-linear (R² ≈ 1); real traces bend (the paper's fit
        // only reaches R² = 0.69), and the two-rate mixture reproduces that
        // curvature. Rates are calibrated so P(ratio >= 2) ≈ 0.33 overall.
        let u: f64 = rng.random::<f64>().max(1e-12);
        let rate = if rng.random::<f64>() < 0.6 {
            cfg.light_ratio_log2_rate * 1.25 // bulk: mild over-provisioning
        } else {
            cfg.light_ratio_log2_rate * 0.50 // heavy tail
        };
        let x = -u.ln() / rate;
        2f64.powf(x.min(8.0)) // cap at 256x
    };
    let base_used_mem_kb =
        ((requested_mem_kb as f64 / ratio).round() as u64).clamp(64, requested_mem_kb);

    let usage_jitter = if rng.random::<f64>() < cfg.jitter_class_fraction {
        // Mostly small similarity ranges with a thin tail out to 2.0
        // (Figure 4's horizontal spread).
        let u: f64 = rng.random();
        if u < 0.8 {
            0.02 + 0.10 * rng.random::<f64>()
        } else {
            0.3 + 1.7 * rng.random::<f64>()
        }
    } else {
        0.0
    };

    // Lognormal runtimes; heavy classes run about three times longer.
    let median_s = if heavy { 1800.0 } else { 600.0 };
    let sigma = 1.3;
    let z = sample_standard_normal(rng);
    let base_runtime_s = (median_s * (sigma * z).exp()).clamp(10.0, 43_200.0);

    ClassSpec {
        user: rng.random_range(0..cfg.users),
        app: rng.random_range(0..cfg.apps),
        nodes,
        requested_mem_kb,
        base_used_mem_kb,
        usage_jitter,
        base_runtime_s,
        size,
    }
}

/// Box-Muller standard normal from two uniforms.
fn sample_standard_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random::<f64>().max(1e-300);
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Generate a calibrated CM5-like workload. Deterministic for a given
/// `(cfg, seed)` pair.
pub fn generate(cfg: &Cm5Config, seed: u64) -> Workload {
    assert!(cfg.jobs > 0, "must generate at least one job");
    let mut rng = StdRng::seed_from_u64(seed);
    let sizes = PowerLawSizes::new(cfg.size_tau, cfg.max_class_size);

    // Carve the job budget into classes.
    let mut classes = Vec::new();
    let mut remaining = cfg.jobs;
    while remaining > 0 {
        let size = sizes.sample(&mut rng).min(remaining);
        classes.push(sample_class(cfg, &mut rng, size));
        remaining -= size;
    }

    // Interleave class members across the trace: lay out one slot per class
    // member, shuffle so each class's submissions spread over the whole span
    // rather than clumping, then attach Poisson arrivals in slot order.
    let mut slots: Vec<u32> = Vec::with_capacity(cfg.jobs);
    for (ci, class) in classes.iter().enumerate() {
        slots.extend(std::iter::repeat_n(ci as u32, class.size));
    }
    // Fisher-Yates, driven by the same seeded RNG for determinism.
    for i in (1..slots.len()).rev() {
        let j = rng.random_range(0..=i);
        slots.swap(i, j);
    }

    let mean_gap_s = cfg.span.as_secs_f64() / cfg.jobs as f64;
    let mut jobs = Vec::with_capacity(cfg.jobs);
    let mut clock_s = 0.0f64;
    let mut id = 0u64;
    assert!(
        (0.0..1.0).contains(&cfg.diurnal_amplitude),
        "diurnal amplitude must be in [0, 1)"
    );
    const DAY_S: f64 = 86_400.0;
    for ci in slots {
        let class = &classes[ci as usize];

        let u: f64 = rng.random::<f64>().max(1e-12);
        let mut gap = -u.ln() * mean_gap_s;
        if cfg.diurnal_amplitude > 0.0 {
            // Thin the process against a sinusoidal daily rate: stretch
            // gaps that fall into the "night" trough. The modulation is
            // mean-one, so total span (and thus offered load) is preserved
            // in expectation.
            let phase = (clock_s % DAY_S) / DAY_S * std::f64::consts::TAU;
            let rate = 1.0 + cfg.diurnal_amplitude * phase.sin();
            gap /= rate.max(1e-6);
        }
        clock_s += gap;
        id += 1;

        let used = (class.base_used_mem_kb as f64
            * (1.0 + class.usage_jitter * rng.random::<f64>()))
        .round() as u64;
        let used = used.clamp(64, class.requested_mem_kb);
        let runtime_s = class.base_runtime_s * (0.7 + 0.6 * rng.random::<f64>());
        let runtime = Time::from_secs_f64(runtime_s.max(1.0));
        // Users overestimate runtime as well; a uniform 1-3x factor mirrors
        // the overestimation literature (Tsafrir et al.).
        let requested_runtime = runtime.scale(1.0 + 2.0 * rng.random::<f64>());
        let status_draw: f64 = rng.random();
        let status = if status_draw < 0.97 {
            JobStatus::Completed
        } else if status_draw < 0.99 {
            JobStatus::Failed
        } else {
            JobStatus::Cancelled
        };

        jobs.push(
            JobBuilder::new(id)
                .user(class.user)
                .app(class.app)
                .submit(Time::from_secs_f64(clock_s))
                .runtime(runtime)
                .requested_runtime(requested_runtime)
                .nodes(class.nodes)
                .requested_mem_kb(class.requested_mem_kb)
                .used_mem_kb(used)
                .status(status)
                .build(),
        );
    }

    Workload::new(jobs)
}

/// Number of distinct similarity classes backing [`stress_stream`].
const STRESS_CLASSES: usize = 4096;

/// Lazily generated stress workload: `jobs` CM5-like jobs drawn from a
/// fixed population of 4096 similarity classes, with
/// exponential inter-arrival gaps calibrated so the offered load against a
/// 1024-node cluster is about 0.7. The iterator holds only the class
/// population and an RNG — memory stays constant no matter how many jobs
/// are drawn, so a 10-million-job stress run never materializes a trace
/// vector. Feed it straight to the engine's streaming entry point.
///
/// Deterministic for a given `(jobs, seed)` pair; submit times are
/// monotone non-decreasing, as streaming consumers require.
pub fn stress_stream(jobs: u64, seed: u64) -> impl Iterator<Item = Job> {
    let cfg = Cm5Config::default();
    let mut rng = StdRng::seed_from_u64(seed);
    let classes: Vec<ClassSpec> = (0..STRESS_CLASSES)
        .map(|_| {
            let mut class = sample_class(&cfg, &mut rng, 1);
            // Full-machine jobs cannot fit a split experimental cluster;
            // cap at the largest partition so every job is admissible.
            class.nodes = class.nodes.min(512);
            class
        })
        .collect();
    // Calibrate the arrival rate: per-job runtime jitter is mean-one, so
    // expected node-seconds per job is the population mean of
    // nodes x base_runtime, and load = mean_node_seconds / (nodes x gap).
    let mean_node_seconds: f64 = classes
        .iter()
        .map(|c| f64::from(c.nodes) * c.base_runtime_s)
        .sum::<f64>()
        / classes.len() as f64;
    let mean_gap_s = mean_node_seconds / (1024.0 * 0.7);
    StressStream {
        rng,
        classes,
        mean_gap_s,
        clock_s: 0.0,
        next_id: 0,
        remaining: jobs,
    }
}

struct StressStream {
    rng: StdRng,
    classes: Vec<ClassSpec>,
    mean_gap_s: f64,
    clock_s: f64,
    next_id: u64,
    remaining: u64,
}

impl Iterator for StressStream {
    type Item = Job;

    fn next(&mut self) -> Option<Job> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let class = self.classes[self.rng.random_range(0..self.classes.len())].clone();

        let u: f64 = self.rng.random::<f64>().max(1e-12);
        self.clock_s += -u.ln() * self.mean_gap_s;
        self.next_id += 1;

        let used = (class.base_used_mem_kb as f64
            * (1.0 + class.usage_jitter * self.rng.random::<f64>()))
        .round() as u64;
        let used = used.clamp(64, class.requested_mem_kb);
        let runtime_s = class.base_runtime_s * (0.7 + 0.6 * self.rng.random::<f64>());
        let runtime = Time::from_secs_f64(runtime_s.max(1.0));
        let requested_runtime = runtime.scale(1.0 + 2.0 * self.rng.random::<f64>());
        let status_draw: f64 = self.rng.random();
        let status = if status_draw < 0.97 {
            JobStatus::Completed
        } else if status_draw < 0.99 {
            JobStatus::Failed
        } else {
            JobStatus::Cancelled
        };

        Some(
            JobBuilder::new(self.next_id)
                .user(class.user)
                .app(class.app)
                .submit(Time::from_secs_f64(self.clock_s))
                .runtime(runtime)
                .requested_runtime(requested_runtime)
                .nodes(class.nodes)
                .requested_mem_kb(class.requested_mem_kb)
                .used_mem_kb(used)
                .status(status)
                .build(),
        )
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = usize::try_from(self.remaining).ok();
        (n.unwrap_or(usize::MAX), n)
    }
}

/// SplitMix64 finalizer: a cheap, high-quality mix from a class index to
/// its per-class parameters, so [`service_stream`] can derive any of
/// millions of classes on demand instead of materializing them.
pub(crate) fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Memory rungs (KB) the service-workload classes request from.
const SERVICE_RUNGS: [u64; 6] = [8 * MB, 16 * MB, 24 * MB, 32 * MB, 48 * MB, 64 * MB];

/// Online-service workload: `ops` jobs drawn uniformly from `groups`
/// distinct similarity classes — the "millions of users, heavy traffic"
/// regime an estimator service faces, where the group table is the scaling
/// axis rather than the cluster.
///
/// Unlike [`stress_stream`] (which materializes its 4096-class population
/// up front), classes here are *derived on demand*: each class index maps
/// through SplitMix64 to a stable `(user, app, requested, typical usage)`
/// tuple, so the iterator's memory footprint is O(1) no matter how many
/// groups the stream spans. One submitting user per class keeps the
/// `(user, app, request)` similarity key distinct per class, so the
/// estimator under test sees exactly `min(groups, distinct draws)` groups.
///
/// Deterministic for a given `(ops, groups, seed)` triple; submit times
/// are monotone non-decreasing, so the stream can also feed the engine's
/// streaming entry points. Exact `size_hint`.
///
/// # Panics
/// Panics when `groups == 0` or `groups` exceeds `u32::MAX` (user ids are
/// 32-bit).
pub fn service_stream(ops: u64, groups: u64, seed: u64) -> impl Iterator<Item = Job> {
    assert!(groups > 0, "service_stream needs at least one class");
    assert!(
        groups <= u64::from(u32::MAX),
        "service_stream class count must fit a 32-bit user id"
    );
    ServiceStream {
        rng: StdRng::seed_from_u64(seed),
        class_salt: splitmix64(seed ^ 0x005E_EDCA_110F_u64),
        groups,
        clock_s: 0.0,
        next_id: 0,
        remaining: ops,
    }
}

struct ServiceStream {
    rng: StdRng,
    /// Mixed into each class derivation so different seeds produce
    /// different class populations, not just different draw orders.
    class_salt: u64,
    groups: u64,
    clock_s: f64,
    next_id: u64,
    remaining: u64,
}

impl Iterator for ServiceStream {
    type Item = Job;

    fn next(&mut self) -> Option<Job> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;

        // Stable per-class parameters, derived on demand.
        let class = self.rng.random_range(0..self.groups);
        let h = splitmix64(class.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ self.class_salt);
        let user = class as u32;
        let app = (h % 24) as u32;
        let requested_mem_kb = SERVICE_RUNGS[((h >> 8) % SERVICE_RUNGS.len() as u64) as usize];
        // Typical usage: 5%–60% of the request, clustered per class (the
        // paper's per-group over-provisioning structure).
        let use_fraction = 0.05 + 0.55 * ((h >> 16) % 1024) as f64 / 1024.0;
        let base_used_kb = requested_mem_kb as f64 * use_fraction;
        let base_runtime_s = 30.0 + ((h >> 26) % 512) as f64;

        // Per-op jitter from the stream RNG.
        let used = (base_used_kb * (0.9 + 0.2 * self.rng.random::<f64>())).round() as u64;
        let used = used.clamp(64, requested_mem_kb);
        let runtime_s = base_runtime_s * (0.7 + 0.6 * self.rng.random::<f64>());
        let runtime = Time::from_secs_f64(runtime_s.max(1.0));
        let requested_runtime = runtime.scale(1.0 + 2.0 * self.rng.random::<f64>());
        let gap_draw: f64 = self.rng.random::<f64>().max(1e-12);
        self.clock_s += -gap_draw.ln() * 0.05; // ~20 submissions/sec
        self.next_id += 1;

        Some(
            JobBuilder::new(self.next_id)
                .user(user)
                .app(app)
                .submit(Time::from_secs_f64(self.clock_s))
                .runtime(runtime)
                .requested_runtime(requested_runtime)
                .nodes(1)
                .requested_mem_kb(requested_mem_kb)
                .used_mem_kb(used)
                .status(JobStatus::Completed)
                .build(),
        )
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = usize::try_from(self.remaining).ok();
        (n.unwrap_or(usize::MAX), n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn small_trace(jobs: usize, seed: u64) -> Workload {
        generate(
            &Cm5Config {
                jobs,
                ..Cm5Config::default()
            },
            seed,
        )
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = small_trace(2_000, 7);
        let b = small_trace(2_000, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = small_trace(1_000, 1);
        let b = small_trace(1_000, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn exact_job_count_and_sorted_submits() {
        let w = small_trace(3_333, 3);
        assert_eq!(w.len(), 3_333);
        assert!(w.jobs().windows(2).all(|p| p[0].submit <= p[1].submit));
    }

    #[test]
    fn requests_cover_usage_everywhere() {
        let w = small_trace(5_000, 11);
        assert!(w.jobs().iter().all(|j| j.request_covers_usage()));
        assert!(w.jobs().iter().all(|j| j.used_mem_kb >= 64));
    }

    #[test]
    fn requests_bounded_by_machine_memory() {
        let cfg = Cm5Config::default();
        let w = small_trace(5_000, 13);
        assert!(w
            .jobs()
            .iter()
            .all(|j| j.requested_mem_kb <= cfg.machine_mem_kb));
    }

    #[test]
    fn overprovisioning_fraction_matches_paper() {
        // Paper: ~32.8% of jobs have requested/used >= 2.
        let w = small_trace(40_000, 42);
        let ratios: Vec<f64> = w
            .jobs()
            .iter()
            .filter_map(|j| j.overprovisioning_ratio())
            .collect();
        let frac = ratios.iter().filter(|&&r| r >= 2.0).count() as f64 / ratios.len() as f64;
        assert!(
            (frac - 0.328).abs() < 0.07,
            "P(ratio >= 2) = {frac:.3}, expected ~0.328"
        );
    }

    #[test]
    fn ratio_tail_spans_orders_of_magnitude() {
        let w = small_trace(40_000, 42);
        let max_ratio = w
            .jobs()
            .iter()
            .filter_map(|j| j.overprovisioning_ratio())
            .fold(0.0f64, f64::max);
        assert!(max_ratio >= 30.0, "max ratio {max_ratio} too small");
    }

    #[test]
    fn group_structure_matches_paper_scale() {
        // Paper: 9,885 groups for 122,055 jobs (mean ~12.3); groups of >= 10
        // jobs are ~19% of groups holding ~83% of jobs. Generating the full
        // trace here is cheap enough (< 1 s).
        let w = small_trace(122_055, 42);
        let mut groups: HashMap<(u32, u32, u64), usize> = HashMap::new();
        for j in w.jobs() {
            *groups
                .entry((j.user, j.app, j.requested_mem_kb))
                .or_default() += 1;
        }
        let n_groups = groups.len();
        assert!(
            (7_000..13_000).contains(&n_groups),
            "group count {n_groups} outside the paper's regime"
        );
        let big: Vec<usize> = groups.values().copied().filter(|&s| s >= 10).collect();
        let frac_groups = big.len() as f64 / n_groups as f64;
        let frac_jobs = big.iter().sum::<usize>() as f64 / w.len() as f64;
        assert!(
            (0.10..0.30).contains(&frac_groups),
            "fraction of groups with >=10 jobs = {frac_groups:.3}"
        );
        assert!(
            (0.70..0.95).contains(&frac_jobs),
            "fraction of jobs in big groups = {frac_jobs:.3}"
        );
    }

    #[test]
    fn heavy_jobs_have_mild_ratios() {
        // The Figure 8 band requires usage below ~16 MB to come from small
        // jobs: check node-second-weighted usage mass.
        let w = small_trace(30_000, 9);
        let mut below_16_ns = 0.0;
        let mut total_ns = 0.0;
        for j in w.jobs() {
            total_ns += j.node_seconds();
            if j.used_mem_kb < 16 * MB {
                below_16_ns += j.node_seconds();
            }
        }
        // Most node-seconds sit at usage >= 16 MB.
        assert!(
            below_16_ns / total_ns < 0.45,
            "usage<16MB node-second share = {:.3}",
            below_16_ns / total_ns
        );
        // ... even though plenty of *jobs* use less than 16 MB.
        let frac_jobs_below =
            w.jobs().iter().filter(|j| j.used_mem_kb < 16 * MB).count() as f64 / w.len() as f64;
        assert!(frac_jobs_below > 0.25, "{frac_jobs_below:.3}");
    }

    #[test]
    fn few_full_machine_jobs() {
        let mut w = small_trace(122_055, 4);
        let dropped = w.retain_max_nodes(512);
        assert!(
            dropped < 120,
            "too many 1024-node jobs to mirror the paper's preprocessing: {dropped}"
        );
    }

    #[test]
    fn power_law_sampler_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let sizes = PowerLawSizes::new(1.65, 800);
        for _ in 0..10_000 {
            let s = sizes.sample(&mut rng);
            assert!((1..=800).contains(&s));
        }
    }

    #[test]
    fn power_law_mean_near_target() {
        let mut rng = StdRng::seed_from_u64(2);
        let sizes = PowerLawSizes::new(1.65, 800);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| sizes.sample(&mut rng) as f64).sum::<f64>() / n as f64;
        assert!(
            (8.0..18.0).contains(&mean),
            "mean class size {mean:.2} off target ~12.3"
        );
    }

    #[test]
    fn diurnal_cycle_concentrates_daytime_arrivals() {
        let flat = generate(
            &Cm5Config {
                jobs: 20_000,
                ..Cm5Config::default()
            },
            5,
        );
        let wavy = generate(
            &Cm5Config {
                jobs: 20_000,
                diurnal_amplitude: 0.9,
                ..Cm5Config::default()
            },
            5,
        );
        // Fraction of arrivals in the first half of each day (the rate
        // peak of sin): flat ~ 0.5, wavy well above.
        let day_frac = |w: &Workload| {
            w.jobs()
                .iter()
                .filter(|j| j.submit.as_secs() % 86_400 < 43_200)
                .count() as f64
                / w.len() as f64
        };
        assert!((day_frac(&flat) - 0.5).abs() < 0.03, "{}", day_frac(&flat));
        assert!(day_frac(&wavy) > 0.6, "{}", day_frac(&wavy));
        // Same job count, comparable span (mean rate preserved).
        assert_eq!(wavy.len(), flat.len());
        let ratio = wavy.span().as_secs_f64() / flat.span().as_secs_f64();
        assert!((0.7..1.3).contains(&ratio), "span ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "diurnal amplitude must be in [0, 1)")]
    fn diurnal_amplitude_validated() {
        let _ = generate(
            &Cm5Config {
                jobs: 10,
                diurnal_amplitude: 1.0,
                ..Cm5Config::default()
            },
            0,
        );
    }

    #[test]
    fn stress_stream_is_deterministic_and_monotone() {
        let a: Vec<_> = stress_stream(5_000, 42).collect();
        let b: Vec<_> = stress_stream(5_000, 42).collect();
        assert_eq!(a, b);
        assert_eq!(a.len(), 5_000);
        assert!(a.windows(2).all(|p| p[0].submit <= p[1].submit));
        assert!(a.iter().all(|j| j.nodes <= 512));
        assert!(a.iter().all(|j| j.request_covers_usage()));
    }

    #[test]
    fn stress_stream_load_near_target() {
        let w: Workload = stress_stream(50_000, 7).collect();
        let load = crate::load::offered_load(&w, 1024);
        assert!(
            (0.5..0.9).contains(&load),
            "offered load {load:.3}, expected ~0.7"
        );
    }

    #[test]
    fn stress_stream_reports_exact_size_hint() {
        let s = stress_stream(123, 1);
        assert_eq!(s.size_hint(), (123, Some(123)));
    }

    #[test]
    fn service_stream_is_deterministic_and_monotone() {
        let a: Vec<_> = service_stream(5_000, 1_000, 42).collect();
        let b: Vec<_> = service_stream(5_000, 1_000, 42).collect();
        assert_eq!(a, b);
        assert_eq!(a.len(), 5_000);
        assert!(a.windows(2).all(|p| p[0].submit <= p[1].submit));
        assert!(a.iter().all(|j| j.nodes == 1));
        assert!(a.iter().all(|j| j.request_covers_usage()));
        assert!(a.iter().all(|j| j.used_mem_kb >= 64));
    }

    #[test]
    fn service_stream_covers_the_class_population() {
        // 20k draws over 1k classes: coupon-collector says essentially every
        // class appears, and each class keeps one similarity key.
        let jobs: Vec<_> = service_stream(20_000, 1_000, 7).collect();
        let mut per_class: HashMap<u32, (u32, u64)> = HashMap::new();
        for j in &jobs {
            let entry = per_class
                .entry(j.user)
                .or_insert((j.app, j.requested_mem_kb));
            assert_eq!(
                (entry.0, entry.1),
                (j.app, j.requested_mem_kb),
                "class parameters must be stable per user"
            );
        }
        assert!(
            per_class.len() > 990,
            "only {} of 1000 classes drawn",
            per_class.len()
        );
        assert!(jobs.iter().all(|j| j.user < 1_000));
    }

    #[test]
    fn service_stream_seed_changes_class_population() {
        let a: Vec<_> = service_stream(1_000, 100, 1).collect();
        let b: Vec<_> = service_stream(1_000, 100, 2).collect();
        assert_ne!(a, b);
        // Different seeds re-derive the classes themselves, not just the
        // draw order: user 0's request should differ somewhere.
        let req = |w: &[Job], u: u32| w.iter().find(|j| j.user == u).map(|j| j.requested_mem_kb);
        assert!((0..100).any(|u| req(&a, u) != req(&b, u)));
    }

    #[test]
    fn service_stream_reports_exact_size_hint() {
        let s = service_stream(123, 10, 1);
        assert_eq!(s.size_hint(), (123, Some(123)));
    }

    #[test]
    #[should_panic(expected = "at least one class")]
    fn service_stream_zero_groups_rejected() {
        let _ = service_stream(10, 0, 0);
    }

    #[test]
    #[should_panic(expected = "at least one job")]
    fn zero_jobs_rejected() {
        let _ = generate(
            &Cm5Config {
                jobs: 0,
                ..Cm5Config::default()
            },
            0,
        );
    }
}
