//! Workload substrate for the `resmatch` workspace.
//!
//! The paper's evidence base is the LANL CM5 workload file from the Parallel
//! Workloads Archive: 122,055 jobs over roughly two years on a 1024-node
//! Thinking Machines CM-5, one of the few public traces that records both
//! *requested* and *used* memory per job. This crate provides:
//!
//! - the [`job::Job`] model with requested vs. actual resource capacities,
//! - a full Standard Workload Format (SWF) v2 parser/writer ([`swf`]) so the
//!   real trace can be used verbatim when available,
//! - a calibrated synthetic generator ([`synthetic`]) reproducing the
//!   statistics the paper reports about that trace (over-provisioning ratio
//!   distribution, similarity-group structure, CM5 node-count spectrum),
//! - trace analysis routines ([`analysis`]) behind Figures 1, 3, and 4, and
//! - offered-load computation and rescaling ([`load`]).
//!
//! # Quick example
//!
//! ```
//! use resmatch_workload::synthetic::{Cm5Config, generate};
//!
//! let trace = generate(&Cm5Config { jobs: 500, ..Cm5Config::default() }, 42);
//! assert_eq!(trace.jobs().len(), 500);
//! // Every job uses no more memory than it requested (the paper's standing
//! // assumption).
//! assert!(trace.jobs().iter().all(|j| j.used_mem_kb <= j.requested_mem_kb));
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod analysis;
pub mod attrs;
pub mod calibration;
pub mod filter;
pub mod job;
pub mod load;
pub mod parametric;
pub mod swf;
pub mod synthetic;
pub mod time;

pub use job::{Job, JobId, JobStatus, Workload};
pub use time::Time;
