//! Synthetic multi-resource attributes for matchmaking experiments.
//!
//! The CM5 trace records memory but neither scratch-disk usage nor software
//! prerequisites, so the multi-resource matchmaking experiments synthesize
//! those two dimensions *after* generation. Synthesis is a separate pass on
//! purpose: the base generators ([`crate::synthetic`], [`crate::swf`]) stay
//! byte-identical for every existing experiment, and a trace only grows disk
//! requests and package masks when an experiment opts in.
//!
//! Attributes follow the same latent-class structure as the memory
//! dimension: every job in a similarity class (`user`, `app`, requested
//! memory) gets the same *requested* disk rung and package set — derived by
//! hashing the class identity, not sampled per job — while actual usage
//! jitters per job. That is what makes the per-resource estimator's
//! group-based learning meaningful on these dimensions, exactly as it is
//! for memory.
//!
//! Invariants guaranteed on every synthesized job:
//!
//! - `used_disk_kb <= requested_disk_kb` when a disk request exists; both
//!   stay zero (unconstrained) otherwise,
//! - `used_packages` is a subset of `requested_packages` (the paper's
//!   standing assumption that requests cover usage), and
//! - jobs are otherwise untouched — ids, submit order, memory, runtimes.
//!
//! Determinism: the pass is a pure function of `(workload, cfg, seed)`;
//! it draws no global randomness and holds no state.

use crate::job::Workload;
use crate::synthetic::splitmix64;

/// One megabyte in KB.
const MB: u64 = 1024;

/// Scratch-disk request rungs (KB per node) a disk-constrained class picks
/// from. Spread around typical per-node scratch partitions of the era so
/// that nodes provisioned with, say, 2 GB of scratch reject the top rungs.
const DISK_RUNGS_KB: [u64; 5] = [256 * MB, 512 * MB, 1024 * MB, 2048 * MB, 4096 * MB];

/// Configuration for [`synthesize_attributes`]. Defaults give both new
/// dimensions enough mass to matter without dominating: roughly a third of
/// classes carry a disk request and a fifth of applications need a licensed
/// package.
#[derive(Debug, Clone)]
pub struct AttrConfig {
    /// Fraction of similarity classes that request scratch disk at all.
    pub disk_class_fraction: f64,
    /// Fraction of applications that require at least one licensed software
    /// package.
    pub package_app_fraction: f64,
    /// Number of distinct licensed packages, i.e. how many low bits of the
    /// package mask are in play. Must be in `1..=32`.
    pub package_count: u32,
    /// Per-job probability that a requested package goes *unused* — the
    /// license-dimension analogue of memory over-provisioning (the
    /// prerequisite was declared defensively).
    pub package_unused_fraction: f64,
}

impl Default for AttrConfig {
    fn default() -> Self {
        AttrConfig {
            disk_class_fraction: 0.35,
            package_app_fraction: 0.20,
            package_count: 4,
            package_unused_fraction: 0.25,
        }
    }
}

/// Uniform draw in `[0, 1)` from lane `lane` of hash state `h`.
fn unit(h: u64, lane: u64) -> f64 {
    (splitmix64(h ^ lane.wrapping_mul(0xA076_1D64_78BD_642F)) >> 11) as f64 / (1u64 << 53) as f64
}

/// Enrich `workload` in place with synthetic disk requests/usage and
/// package masks. Deterministic for a given `(cfg, seed)`; idempotent in
/// the sense that re-running with the same inputs produces the same
/// attributes (previous values are overwritten, not accumulated).
///
/// # Panics
/// Panics when `cfg.package_count` is outside `1..=32` or a fraction is
/// outside `[0, 1]`.
pub fn synthesize_attributes(workload: &mut Workload, cfg: &AttrConfig, seed: u64) {
    assert!(
        (1..=32).contains(&cfg.package_count),
        "package_count must be in 1..=32"
    );
    for f in [
        cfg.disk_class_fraction,
        cfg.package_app_fraction,
        cfg.package_unused_fraction,
    ] {
        assert!((0.0..=1.0).contains(&f), "fractions must be in [0, 1]");
    }

    let salt = splitmix64(seed ^ 0x00A7_7215_D15C_0DE5);
    for job in workload.jobs_mut() {
        // Class identity: the same tuple the similarity policies key on, so
        // every member of a group sees the same requested attributes.
        let class_h = splitmix64(
            salt ^ splitmix64(u64::from(job.user) << 32 | u64::from(job.app))
                ^ splitmix64(job.requested_mem_kb),
        );
        let job_h = splitmix64(salt ^ splitmix64(job.id.0).wrapping_mul(0x9E37_79B9_7F4A_7C15));

        // Disk: class-level request rung and typical-use fraction, per-job
        // jitter on actual usage.
        if unit(class_h, 1) < cfg.disk_class_fraction {
            let rung =
                DISK_RUNGS_KB[(splitmix64(class_h ^ 2) % DISK_RUNGS_KB.len() as u64) as usize];
            // Typical usage 10%-90% of the request, clustered per class —
            // the disk analogue of the memory over-provisioning structure.
            let use_fraction = 0.10 + 0.80 * unit(class_h, 3);
            let used = (rung as f64 * use_fraction * (0.85 + 0.30 * unit(job_h, 4))).round() as u64;
            job.requested_disk_kb = rung;
            job.used_disk_kb = used.clamp(1, rung);
        } else {
            job.requested_disk_kb = 0;
            job.used_disk_kb = 0;
        }

        // Packages: application-level profile. An app either needs one
        // licensed package or (rarely) two adjacent ones.
        let app_h = splitmix64(salt ^ 0xA99 ^ u64::from(job.app));
        if unit(app_h, 5) < cfg.package_app_fraction {
            let first = splitmix64(app_h ^ 6) % u64::from(cfg.package_count);
            let mut mask = 1u32 << first;
            if cfg.package_count > 1 && unit(app_h, 7) < 0.25 {
                let second = (first + 1) % u64::from(cfg.package_count);
                mask |= 1u32 << second;
            }
            job.requested_packages = mask;
            // Over-declared prerequisite: some jobs never touch the
            // licensed software they asked for.
            job.used_packages = if unit(job_h, 8) < cfg.package_unused_fraction {
                0
            } else {
                mask
            };
        } else {
            job.requested_packages = 0;
            job.used_packages = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{generate, Cm5Config};
    use std::collections::HashMap;

    fn enriched(jobs: usize, seed: u64) -> Workload {
        let mut w = generate(
            &Cm5Config {
                jobs,
                ..Cm5Config::default()
            },
            seed,
        );
        synthesize_attributes(&mut w, &AttrConfig::default(), seed);
        w
    }

    #[test]
    fn deterministic_for_same_inputs() {
        let a = enriched(2_000, 7);
        let b = enriched(2_000, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn invariants_hold_everywhere() {
        let w = enriched(5_000, 11);
        for j in w.jobs() {
            assert!(j.request_covers_usage(), "job {:?}", j.id);
            if j.requested_disk_kb == 0 {
                assert_eq!(j.used_disk_kb, 0);
            } else {
                assert!(j.used_disk_kb >= 1 && j.used_disk_kb <= j.requested_disk_kb);
            }
            assert_eq!(j.used_packages & !j.requested_packages, 0);
        }
    }

    #[test]
    fn requested_attributes_are_stable_per_class() {
        let w = enriched(20_000, 42);
        let mut per_class: HashMap<(u32, u32, u64), u64> = HashMap::new();
        for j in w.jobs() {
            let key = (j.user, j.app, j.requested_mem_kb);
            let prev = per_class.entry(key).or_insert(j.requested_disk_kb);
            assert_eq!(
                *prev, j.requested_disk_kb,
                "class {key:?} disk request drifted"
            );
        }
        // Package profiles are per app.
        let mut per_app: HashMap<u32, u32> = HashMap::new();
        for j in w.jobs() {
            let prev = per_app.entry(j.app).or_insert(j.requested_packages);
            assert_eq!(*prev, j.requested_packages, "app {} mask drifted", j.app);
        }
    }

    #[test]
    fn both_dimensions_get_real_mass() {
        let w = enriched(20_000, 3);
        let disk_frac =
            w.jobs().iter().filter(|j| j.requested_disk_kb > 0).count() as f64 / w.len() as f64;
        let pkg_frac = w
            .jobs()
            .iter()
            .filter(|j| j.requested_packages != 0)
            .count() as f64
            / w.len() as f64;
        assert!(
            (0.1..0.7).contains(&disk_frac),
            "disk fraction {disk_frac:.3}"
        );
        assert!(
            (0.02..0.6).contains(&pkg_frac),
            "package fraction {pkg_frac:.3}"
        );
        // Over-provisioning exists in both new dimensions: some disk
        // requests are at least twice the usage, some requested packages go
        // unused.
        assert!(w
            .jobs()
            .iter()
            .any(|j| j.requested_disk_kb >= 2 * j.used_disk_kb.max(1) && j.requested_disk_kb > 0));
        assert!(w
            .jobs()
            .iter()
            .any(|j| j.requested_packages != 0 && j.used_packages == 0));
    }

    #[test]
    fn memory_and_ordering_untouched() {
        let base = generate(
            &Cm5Config {
                jobs: 2_000,
                ..Cm5Config::default()
            },
            9,
        );
        let mut enriched = base.clone();
        synthesize_attributes(&mut enriched, &AttrConfig::default(), 9);
        for (a, b) in base.jobs().iter().zip(enriched.jobs()) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.submit, b.submit);
            assert_eq!(a.requested_mem_kb, b.requested_mem_kb);
            assert_eq!(a.used_mem_kb, b.used_mem_kb);
            assert_eq!(a.runtime, b.runtime);
        }
    }

    #[test]
    fn zeroed_config_clears_attributes() {
        let mut w = enriched(500, 1);
        synthesize_attributes(
            &mut w,
            &AttrConfig {
                disk_class_fraction: 0.0,
                package_app_fraction: 0.0,
                package_count: 1,
                package_unused_fraction: 0.0,
            },
            1,
        );
        assert!(w
            .jobs()
            .iter()
            .all(|j| j.requested_disk_kb == 0 && j.requested_packages == 0));
    }

    #[test]
    #[should_panic(expected = "package_count")]
    fn package_count_validated() {
        let mut w = generate(
            &Cm5Config {
                jobs: 10,
                ..Cm5Config::default()
            },
            0,
        );
        synthesize_attributes(
            &mut w,
            &AttrConfig {
                package_count: 33,
                ..AttrConfig::default()
            },
            0,
        );
    }
}
