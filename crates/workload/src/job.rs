//! The job model: requested vs. actual resource capacities.
//!
//! A job is a set of processes run in parallel on one or more nodes. The
//! fields mirror the Standard Workload Format record for the LANL CM5 trace,
//! extended with a software-package prerequisite set — the paper names
//! installed packages (alongside memory and disk) as a resource class subject
//! to over-provisioning.

use serde::{Deserialize, Serialize};

use crate::time::Time;

/// Unique job identifier (the SWF job number).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct JobId(pub u64);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job#{}", self.0)
    }
}

/// Terminal status recorded in a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum JobStatus {
    /// Ran to successful completion.
    Completed,
    /// Failed (in the paper's implicit-feedback model the scheduler cannot
    /// tell why).
    Failed,
    /// Cancelled before or during execution.
    Cancelled,
}

/// A single job submission.
///
/// Memory quantities are **KB per node**, following SWF convention for the
/// CM5 trace. `used_mem_kb` is the peak actual consumption — the quantity the
/// estimators try to approach from above.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Job {
    /// Unique identifier.
    pub id: JobId,
    /// Submitting user.
    pub user: u32,
    /// Application / executable number. Together with `user` and
    /// `requested_mem_kb` this forms the paper's similarity key for CM5.
    pub app: u32,
    /// Submission instant.
    pub submit: Time,
    /// Actual execution duration when granted sufficient resources.
    pub runtime: Time,
    /// User's runtime estimate (SWF "requested time"); equals `runtime` when
    /// the trace does not record one.
    pub requested_runtime: Time,
    /// Number of nodes the job runs on.
    pub nodes: u32,
    /// Memory the user requested, KB per node.
    pub requested_mem_kb: u64,
    /// Peak memory the job actually used, KB per node.
    pub used_mem_kb: u64,
    /// Scratch disk the user requested, KB per node. Zero — the value for
    /// traces without disk records — means unconstrained, matching
    /// `Demand`'s convention.
    #[serde(default)]
    pub requested_disk_kb: u64,
    /// Peak scratch disk actually used, KB per node.
    #[serde(default)]
    pub used_disk_kb: u64,
    /// Bitmask of software packages listed as prerequisites.
    pub requested_packages: u32,
    /// Bitmask of packages the job actually exercised (⊆ requested in the
    /// paper's model).
    pub used_packages: u32,
    /// Terminal status in the source trace.
    pub status: JobStatus,
}

impl Job {
    /// Over-provisioning ratio requested/used. `None` when usage is zero
    /// (ratio undefined) or the request is zero.
    pub fn overprovisioning_ratio(&self) -> Option<f64> {
        if self.used_mem_kb == 0 || self.requested_mem_kb == 0 {
            None
        } else {
            Some(self.requested_mem_kb as f64 / self.used_mem_kb as f64)
        }
    }

    /// Node-seconds of work this job represents.
    pub fn node_seconds(&self) -> f64 {
        self.nodes as f64 * self.runtime.as_secs_f64()
    }

    /// True when the trace upholds the paper's standing assumption that
    /// requests never fall below actual usage.
    pub fn request_covers_usage(&self) -> bool {
        self.used_mem_kb <= self.requested_mem_kb
            && (self.requested_disk_kb == 0 || self.used_disk_kb <= self.requested_disk_kb)
            && (self.used_packages & !self.requested_packages) == 0
    }
}

/// An ordered collection of jobs (a trace).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    jobs: Vec<Job>,
}

impl Workload {
    /// Build from jobs, sorting by submit time (stable, so equal-time jobs
    /// keep their trace order).
    pub fn new(mut jobs: Vec<Job>) -> Self {
        jobs.sort_by_key(|j| j.submit);
        Workload { jobs }
    }

    /// Build from jobs already ordered by submit time, skipping the sort.
    ///
    /// The caller vouches for the order (debug builds verify it); combined
    /// with [`Workload::into_jobs`] this lets a sweep recycle one job buffer
    /// across points without re-sorting or reallocating.
    pub fn from_sorted(jobs: Vec<Job>) -> Self {
        debug_assert!(
            jobs.iter()
                .zip(jobs.iter().skip(1))
                .all(|(a, b)| a.submit <= b.submit),
            "from_sorted requires jobs ordered by submit time"
        );
        Workload { jobs }
    }

    /// The jobs, ordered by submit time.
    pub fn jobs(&self) -> &[Job] {
        &self.jobs
    }

    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// True when the trace holds no jobs.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Total demanded work in node-seconds.
    pub fn total_node_seconds(&self) -> f64 {
        self.jobs.iter().map(Job::node_seconds).sum()
    }

    /// Duration between the first and last submission (zero for traces with
    /// fewer than two jobs).
    pub fn span(&self) -> Time {
        match (self.jobs.first(), self.jobs.last()) {
            (Some(first), Some(last)) => last.submit.saturating_sub(first.submit),
            _ => Time::ZERO,
        }
    }

    /// Largest node count any job requests.
    pub fn max_nodes(&self) -> u32 {
        self.jobs.iter().map(|j| j.nodes).max().unwrap_or(0)
    }

    /// Remove jobs needing more than `max_nodes` nodes, returning how many
    /// were dropped. The paper removes the six full-machine (1024-node) CM5
    /// jobs so the trace can run on a heterogeneous split of the cluster.
    pub fn retain_max_nodes(&mut self, max_nodes: u32) -> usize {
        let before = self.jobs.len();
        self.jobs.retain(|j| j.nodes <= max_nodes);
        before - self.jobs.len()
    }

    /// Mutable access to the jobs, preserving order — the hook in-place
    /// enrichment passes (e.g. [`crate::attrs::synthesize_attributes`])
    /// use. Callers must not reorder submissions.
    pub fn jobs_mut(&mut self) -> &mut [Job] {
        &mut self.jobs
    }

    /// Consume into the underlying job vector.
    pub fn into_jobs(self) -> Vec<Job> {
        self.jobs
    }

    /// Iterate over jobs.
    pub fn iter(&self) -> std::slice::Iter<'_, Job> {
        self.jobs.iter()
    }
}

impl FromIterator<Job> for Workload {
    fn from_iter<I: IntoIterator<Item = Job>>(iter: I) -> Self {
        Workload::new(iter.into_iter().collect())
    }
}

/// A convenient builder for tests and examples.
#[derive(Debug, Clone)]
pub struct JobBuilder {
    job: Job,
}

impl JobBuilder {
    /// Start a builder for the given id with neutral defaults: one node,
    /// 1 s runtime, 32 MB requested and used, completed.
    pub fn new(id: u64) -> Self {
        JobBuilder {
            job: Job {
                id: JobId(id),
                user: 0,
                app: 0,
                submit: Time::ZERO,
                runtime: Time::from_secs(1),
                requested_runtime: Time::from_secs(1),
                nodes: 1,
                requested_mem_kb: 32 * 1024,
                used_mem_kb: 32 * 1024,
                requested_disk_kb: 0,
                used_disk_kb: 0,
                requested_packages: 0,
                used_packages: 0,
                status: JobStatus::Completed,
            },
        }
    }

    /// Set the submitting user.
    pub fn user(mut self, user: u32) -> Self {
        self.job.user = user;
        self
    }

    /// Set the application number.
    pub fn app(mut self, app: u32) -> Self {
        self.job.app = app;
        self
    }

    /// Set the submit time.
    pub fn submit(mut self, t: Time) -> Self {
        self.job.submit = t;
        self
    }

    /// Set the actual runtime (and, if not set separately, the estimate).
    pub fn runtime(mut self, t: Time) -> Self {
        self.job.runtime = t;
        self.job.requested_runtime = t;
        self
    }

    /// Set the user's runtime estimate.
    pub fn requested_runtime(mut self, t: Time) -> Self {
        self.job.requested_runtime = t;
        self
    }

    /// Set the node count.
    pub fn nodes(mut self, n: u32) -> Self {
        self.job.nodes = n;
        self
    }

    /// Set requested memory (KB per node).
    pub fn requested_mem_kb(mut self, kb: u64) -> Self {
        self.job.requested_mem_kb = kb;
        self
    }

    /// Set used memory (KB per node).
    pub fn used_mem_kb(mut self, kb: u64) -> Self {
        self.job.used_mem_kb = kb;
        self
    }

    /// Set requested disk (KB per node).
    pub fn requested_disk_kb(mut self, kb: u64) -> Self {
        self.job.requested_disk_kb = kb;
        self
    }

    /// Set used disk (KB per node).
    pub fn used_disk_kb(mut self, kb: u64) -> Self {
        self.job.used_disk_kb = kb;
        self
    }

    /// Set requested packages bitmask.
    pub fn requested_packages(mut self, mask: u32) -> Self {
        self.job.requested_packages = mask;
        self
    }

    /// Set used packages bitmask.
    pub fn used_packages(mut self, mask: u32) -> Self {
        self.job.used_packages = mask;
        self
    }

    /// Set the trace status.
    pub fn status(mut self, status: JobStatus) -> Self {
        self.job.status = status;
        self
    }

    /// Finish building.
    pub fn build(self) -> Job {
        self.job
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(id: u64) -> Job {
        JobBuilder::new(id).build()
    }

    #[test]
    fn ratio_basic() {
        let j = JobBuilder::new(1)
            .requested_mem_kb(32_768)
            .used_mem_kb(8_192)
            .build();
        assert_eq!(j.overprovisioning_ratio(), Some(4.0));
    }

    #[test]
    fn ratio_undefined_for_zero_usage() {
        let j = JobBuilder::new(1).used_mem_kb(0).build();
        assert_eq!(j.overprovisioning_ratio(), None);
        let j = JobBuilder::new(1)
            .requested_mem_kb(0)
            .used_mem_kb(0)
            .build();
        assert_eq!(j.overprovisioning_ratio(), None);
    }

    #[test]
    fn node_seconds() {
        let j = JobBuilder::new(1)
            .nodes(4)
            .runtime(Time::from_secs(10))
            .build();
        assert!((j.node_seconds() - 40.0).abs() < 1e-12);
    }

    #[test]
    fn request_covers_usage_checks_packages_too() {
        let ok = JobBuilder::new(1)
            .requested_packages(0b111)
            .used_packages(0b101)
            .build();
        assert!(ok.request_covers_usage());
        let bad = JobBuilder::new(2)
            .requested_packages(0b001)
            .used_packages(0b011)
            .build();
        assert!(!bad.request_covers_usage());
        let over = JobBuilder::new(3)
            .requested_mem_kb(10)
            .used_mem_kb(20)
            .build();
        assert!(!over.request_covers_usage());
    }

    #[test]
    fn workload_sorts_by_submit() {
        let jobs = vec![
            JobBuilder::new(2).submit(Time::from_secs(10)).build(),
            JobBuilder::new(1).submit(Time::from_secs(5)).build(),
        ];
        let w = Workload::new(jobs);
        assert_eq!(w.jobs()[0].id, JobId(1));
        assert_eq!(w.jobs()[1].id, JobId(2));
        assert_eq!(w.span(), Time::from_secs(5));
    }

    #[test]
    fn workload_stable_sort_preserves_tie_order() {
        let jobs = vec![
            JobBuilder::new(7).submit(Time::from_secs(1)).build(),
            JobBuilder::new(3).submit(Time::from_secs(1)).build(),
        ];
        let w = Workload::new(jobs);
        assert_eq!(w.jobs()[0].id, JobId(7));
        assert_eq!(w.jobs()[1].id, JobId(3));
    }

    #[test]
    fn retain_max_nodes_mirrors_paper_preprocessing() {
        let jobs = vec![
            JobBuilder::new(1).nodes(1024).build(),
            JobBuilder::new(2).nodes(512).build(),
            JobBuilder::new(3).nodes(1024).build(),
        ];
        let mut w = Workload::new(jobs);
        let dropped = w.retain_max_nodes(512);
        assert_eq!(dropped, 2);
        assert_eq!(w.len(), 1);
        assert_eq!(w.max_nodes(), 512);
    }

    #[test]
    fn empty_workload_edge_cases() {
        let w = Workload::default();
        assert!(w.is_empty());
        assert_eq!(w.span(), Time::ZERO);
        assert_eq!(w.max_nodes(), 0);
        assert_eq!(w.total_node_seconds(), 0.0);
    }

    #[test]
    fn from_iterator_collects() {
        let w: Workload = (0..3).map(job).collect();
        assert_eq!(w.len(), 3);
    }
}
