//! Calibration targets and validation.
//!
//! The synthetic generator's whole claim to fidelity is that it matches the
//! statistics the paper reports about the LANL CM5 trace. This module makes
//! that claim checkable: [`CalibrationTargets::paper`] encodes the published
//! numbers, [`measure`] computes the same statistics for any workload, and
//! [`CalibrationReport`] scores the deviation — so recalibrating the
//! generator (or validating it against the *real* trace, if you have it) is
//! one function call.

use crate::analysis::{group_size_distribution, overprovisioned_fraction, trace_stats};
use crate::job::Workload;

/// Reference statistics to calibrate against.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalibrationTargets {
    /// Total jobs.
    pub jobs: usize,
    /// Similarity groups under the paper's (user, app, requested-memory)
    /// key.
    pub groups: usize,
    /// Fraction of jobs with requested/used >= 2.
    pub overprovisioned_2x: f64,
    /// Fraction of groups holding >= 10 jobs.
    pub big_group_fraction: f64,
    /// Fraction of jobs inside those groups.
    pub jobs_in_big_groups: f64,
}

impl CalibrationTargets {
    /// The numbers the paper reports for the LANL CM5 trace.
    pub fn paper() -> Self {
        CalibrationTargets {
            jobs: 122_055,
            groups: 9_885,
            overprovisioned_2x: 0.328,
            big_group_fraction: 0.194,
            jobs_in_big_groups: 0.83,
        }
    }
}

/// The same statistics, measured on a concrete workload.
pub fn measure(workload: &Workload) -> CalibrationTargets {
    let stats = trace_stats(workload);
    let dist = group_size_distribution(workload);
    let big_groups: usize = dist.iter().filter(|b| b.size >= 10).map(|b| b.groups).sum();
    let jobs_in_big: f64 = dist
        .iter()
        .filter(|b| b.size >= 10)
        .map(|b| b.job_fraction)
        .sum();
    CalibrationTargets {
        jobs: stats.jobs,
        groups: stats.groups,
        overprovisioned_2x: overprovisioned_fraction(workload, 2.0),
        big_group_fraction: if stats.groups == 0 {
            0.0
        } else {
            big_groups as f64 / stats.groups as f64
        },
        jobs_in_big_groups: jobs_in_big,
    }
}

/// One scored dimension of a calibration comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationCheck {
    /// What is being compared.
    pub name: &'static str,
    /// Reference value.
    pub target: f64,
    /// Measured value.
    pub measured: f64,
    /// |measured - target| / max(|target|, ε).
    pub relative_error: f64,
}

/// A full comparison between measured statistics and targets.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationReport {
    /// Per-dimension checks.
    pub checks: Vec<CalibrationCheck>,
}

impl CalibrationReport {
    /// Compare `measured` against `targets`. Count-type dimensions (jobs,
    /// groups) are compared as densities (groups per job) so traces of
    /// different sizes remain comparable.
    pub fn compare(measured: &CalibrationTargets, targets: &CalibrationTargets) -> Self {
        fn check(name: &'static str, target: f64, measured: f64) -> CalibrationCheck {
            let denom = target.abs().max(1e-12);
            CalibrationCheck {
                name,
                target,
                measured,
                relative_error: (measured - target).abs() / denom,
            }
        }
        let target_density = targets.groups as f64 / targets.jobs.max(1) as f64;
        let measured_density = measured.groups as f64 / measured.jobs.max(1) as f64;
        CalibrationReport {
            checks: vec![
                check("groups_per_job", target_density, measured_density),
                check(
                    "overprovisioned_2x",
                    targets.overprovisioned_2x,
                    measured.overprovisioned_2x,
                ),
                check(
                    "big_group_fraction",
                    targets.big_group_fraction,
                    measured.big_group_fraction,
                ),
                check(
                    "jobs_in_big_groups",
                    targets.jobs_in_big_groups,
                    measured.jobs_in_big_groups,
                ),
            ],
        }
    }

    /// Largest relative error across dimensions.
    pub fn worst_error(&self) -> f64 {
        self.checks
            .iter()
            .map(|c| c.relative_error)
            .fold(0.0, f64::max)
    }

    /// True when every dimension is within `tolerance` relative error.
    pub fn passes(&self, tolerance: f64) -> bool {
        self.worst_error() <= tolerance
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{generate, Cm5Config};

    #[test]
    fn full_scale_synthetic_trace_calibrates_against_paper() {
        let trace = generate(&Cm5Config::default(), 42);
        let report = CalibrationReport::compare(&measure(&trace), &CalibrationTargets::paper());
        // The generator promises each published statistic within ~30%
        // relative error (most are far closer; see EXPERIMENTS.md).
        assert!(
            report.passes(0.30),
            "calibration drifted: {:#?}",
            report.checks
        );
    }

    #[test]
    fn measure_on_empty_trace_is_safe() {
        let m = measure(&Workload::default());
        assert_eq!(m.jobs, 0);
        assert_eq!(m.groups, 0);
        assert_eq!(m.overprovisioned_2x, 0.0);
    }

    #[test]
    fn comparing_targets_to_themselves_is_exact() {
        let t = CalibrationTargets::paper();
        let report = CalibrationReport::compare(&t, &t);
        assert_eq!(report.worst_error(), 0.0);
        assert!(report.passes(0.0));
    }

    #[test]
    fn drift_is_detected() {
        let t = CalibrationTargets::paper();
        let drifted = CalibrationTargets {
            overprovisioned_2x: t.overprovisioned_2x * 2.0,
            ..t
        };
        let report = CalibrationReport::compare(&drifted, &t);
        assert!(!report.passes(0.5));
        assert!((report.worst_error() - 1.0).abs() < 1e-9);
        let offending = report
            .checks
            .iter()
            .max_by(|a, b| a.relative_error.partial_cmp(&b.relative_error).unwrap())
            .unwrap();
        assert_eq!(offending.name, "overprovisioned_2x");
    }

    #[test]
    fn density_comparison_is_scale_free() {
        // A smaller trace with the same group density scores ~0 error on
        // the density dimension.
        let t = CalibrationTargets::paper();
        let scaled = CalibrationTargets {
            jobs: t.jobs / 10,
            groups: t.groups / 10,
            ..t
        };
        let report = CalibrationReport::compare(&scaled, &t);
        let density = report
            .checks
            .iter()
            .find(|c| c.name == "groups_per_job")
            .unwrap();
        assert!(density.relative_error < 0.01);
    }
}
