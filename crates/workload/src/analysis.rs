//! Trace analysis behind the paper's Figures 1, 3, and 4.
//!
//! These routines characterize a workload *before* any simulation: how badly
//! jobs over-provision (Figure 1), how similarity groups are sized
//! (Figure 3), and how much estimation could gain per group versus how
//! self-similar the group is (Figure 4).

use std::collections::HashMap;

use resmatch_stats::histogram::LogHistogram;
use resmatch_stats::regression::SimpleLinearRegression;

use crate::job::{Job, Workload};

/// The paper's similarity key for the LANL CM5 trace: user ID, application
/// number, and requested memory. Jobs sharing all three are deemed similar.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GroupKey {
    /// Submitting user.
    pub user: u32,
    /// Application number.
    pub app: u32,
    /// Requested memory, KB per node.
    pub requested_mem_kb: u64,
}

impl GroupKey {
    /// Extract the key from a job.
    pub fn of(job: &Job) -> Self {
        GroupKey {
            user: job.user,
            app: job.app,
            requested_mem_kb: job.requested_mem_kb,
        }
    }
}

/// Partition a workload into similarity groups.
pub fn group_jobs(workload: &Workload) -> HashMap<GroupKey, Vec<&Job>> {
    let mut groups: HashMap<GroupKey, Vec<&Job>> = HashMap::new();
    for job in workload.jobs() {
        groups.entry(GroupKey::of(job)).or_default().push(job);
    }
    groups
}

/// Histogram of requested/used memory ratios in power-of-two bins starting
/// at ratio 1 (the data behind Figure 1). Jobs with zero usage or zero
/// request are skipped.
pub fn overprovisioning_histogram(workload: &Workload, bins: usize) -> LogHistogram {
    let mut hist = LogHistogram::new(1.0, 2.0, bins);
    hist.record_all(
        workload
            .jobs()
            .iter()
            .filter_map(Job::overprovisioning_ratio),
    );
    hist
}

/// Fit the Figure 1 regression line: log10 of the per-bin job fraction
/// against the bin index. Empty bins are skipped (log of zero is undefined).
/// Returns `None` when fewer than two bins are populated.
pub fn histogram_log_fit(hist: &LogHistogram) -> Option<SimpleLinearRegression> {
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for i in 0..hist.num_bins() {
        let frac = hist.fraction(i);
        if frac > 0.0 {
            xs.push(i as f64);
            ys.push(frac.log10());
        }
    }
    SimpleLinearRegression::fit(&xs, &ys)
}

/// Fraction of jobs whose over-provisioning ratio is at least `threshold`
/// (the paper quotes 32.8% for a threshold of 2 on the CM5 trace), relative
/// to jobs with a defined ratio.
pub fn overprovisioned_fraction(workload: &Workload, threshold: f64) -> f64 {
    let ratios: Vec<f64> = workload
        .jobs()
        .iter()
        .filter_map(Job::overprovisioning_ratio)
        .collect();
    if ratios.is_empty() {
        return 0.0;
    }
    ratios.iter().filter(|&&r| r >= threshold).count() as f64 / ratios.len() as f64
}

/// One point of the Figure 3 histogram: all groups of a given size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroupSizeBucket {
    /// Group size (number of jobs).
    pub size: usize,
    /// How many groups have this size.
    pub groups: usize,
    /// Fraction of all jobs contained in groups of this size.
    pub job_fraction: f64,
}

/// The distribution of jobs across group sizes (Figure 3), sorted by size.
pub fn group_size_distribution(workload: &Workload) -> Vec<GroupSizeBucket> {
    let groups = group_jobs(workload);
    let total_jobs = workload.len();
    let mut by_size: HashMap<usize, usize> = HashMap::new();
    for members in groups.values() {
        *by_size.entry(members.len()).or_default() += 1;
    }
    let mut buckets: Vec<GroupSizeBucket> = by_size
        .into_iter()
        .map(|(size, count)| GroupSizeBucket {
            size,
            groups: count,
            job_fraction: if total_jobs == 0 {
                0.0
            } else {
                (size * count) as f64 / total_jobs as f64
            },
        })
        .collect();
    buckets.sort_by_key(|b| b.size);
    buckets
}

/// One point of Figure 4: a similarity group's potential gain versus its
/// internal spread.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GainPoint {
    /// Number of jobs in the group.
    pub size: usize,
    /// Requested memory over the group's *maximum* used memory — the
    /// head-room estimation could reclaim.
    pub gain: f64,
    /// Maximum used memory over minimum used memory — the similarity range;
    /// 1 means all members use identical amounts.
    pub range: f64,
}

/// Compute Figure 4's scatter: for every group with at least `min_size`
/// members (the paper uses 10), the gain and similarity range. Groups whose
/// members report zero usage are skipped.
pub fn gain_vs_range(workload: &Workload, min_size: usize) -> Vec<GainPoint> {
    let groups = group_jobs(workload);
    let mut points = Vec::new();
    for (key, members) in groups {
        if members.len() < min_size {
            continue;
        }
        let used: Vec<u64> = members
            .iter()
            .map(|j| j.used_mem_kb)
            .filter(|&u| u > 0)
            .collect();
        if used.is_empty() {
            continue;
        }
        let max_used = *used.iter().max().expect("non-empty") as f64;
        let min_used = *used.iter().min().expect("non-empty") as f64;
        points.push(GainPoint {
            size: members.len(),
            gain: key.requested_mem_kb as f64 / max_used,
            range: max_used / min_used,
        });
    }
    points.sort_by(|a, b| a.range.partial_cmp(&b.range).expect("finite ranges"));
    points
}

/// Per-user workload profile — who over-provisions, and by how much.
///
/// The paper attributes over-provisioning to "the difficulty users
/// encounter when trying to assess job requirements"; this view makes the
/// per-user structure inspectable (some users chronically pad requests,
/// others are exact), which is also what motivates keying similarity
/// groups by user.
#[derive(Debug, Clone, PartialEq)]
pub struct UserProfile {
    /// User id.
    pub user: u32,
    /// Jobs submitted.
    pub jobs: usize,
    /// Distinct similarity groups this user's jobs form.
    pub groups: usize,
    /// Median over-provisioning ratio (jobs with defined ratios).
    pub median_ratio: f64,
    /// Total node-seconds demanded.
    pub node_seconds: f64,
}

/// Per-user profiles, sorted by descending node-seconds (heaviest users
/// first).
pub fn user_profiles(workload: &Workload) -> Vec<UserProfile> {
    use resmatch_stats::Summary;
    let mut by_user: HashMap<u32, Vec<&Job>> = HashMap::new();
    for job in workload.jobs() {
        by_user.entry(job.user).or_default().push(job);
    }
    let mut profiles: Vec<UserProfile> = by_user
        .into_iter()
        .map(|(user, jobs)| {
            let ratios: Vec<f64> = jobs
                .iter()
                .filter_map(|j| j.overprovisioning_ratio())
                .collect();
            let mut keys: Vec<GroupKey> = jobs.iter().map(|j| GroupKey::of(j)).collect();
            keys.sort_unstable();
            keys.dedup();
            UserProfile {
                user,
                jobs: jobs.len(),
                groups: keys.len(),
                median_ratio: Summary::from_slice(&ratios).median().unwrap_or(0.0),
                node_seconds: jobs.iter().map(|j| j.node_seconds()).sum(),
            }
        })
        .collect();
    profiles.sort_by(|a, b| {
        b.node_seconds
            .partial_cmp(&a.node_seconds)
            .expect("finite node-seconds")
    });
    profiles
}

/// Headline statistics of a trace, printed by examples and experiment
/// binaries.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStats {
    /// Number of jobs.
    pub jobs: usize,
    /// Number of similarity groups.
    pub groups: usize,
    /// Mean group size.
    pub mean_group_size: f64,
    /// Fraction of jobs with ratio >= 2.
    pub overprovisioned_2x: f64,
    /// Largest over-provisioning ratio observed.
    pub max_ratio: f64,
    /// Total demanded node-seconds.
    pub node_seconds: f64,
}

/// Compute [`TraceStats`] for a workload.
pub fn trace_stats(workload: &Workload) -> TraceStats {
    let groups = group_jobs(workload);
    let max_ratio = workload
        .jobs()
        .iter()
        .filter_map(Job::overprovisioning_ratio)
        .fold(0.0f64, f64::max);
    TraceStats {
        jobs: workload.len(),
        groups: groups.len(),
        mean_group_size: if groups.is_empty() {
            0.0
        } else {
            workload.len() as f64 / groups.len() as f64
        },
        overprovisioned_2x: overprovisioned_fraction(workload, 2.0),
        max_ratio,
        node_seconds: workload.total_node_seconds(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobBuilder;

    fn wl(jobs: Vec<Job>) -> Workload {
        Workload::new(jobs)
    }

    fn job_with(id: u64, user: u32, app: u32, req: u64, used: u64) -> Job {
        JobBuilder::new(id)
            .user(user)
            .app(app)
            .requested_mem_kb(req)
            .used_mem_kb(used)
            .build()
    }

    #[test]
    fn grouping_by_key() {
        let w = wl(vec![
            job_with(1, 1, 1, 100, 50),
            job_with(2, 1, 1, 100, 60),
            job_with(3, 1, 1, 200, 60), // different request → different group
            job_with(4, 2, 1, 100, 50), // different user → different group
        ]);
        let groups = group_jobs(&w);
        assert_eq!(groups.len(), 3);
        let key = GroupKey {
            user: 1,
            app: 1,
            requested_mem_kb: 100,
        };
        assert_eq!(groups[&key].len(), 2);
    }

    #[test]
    fn histogram_counts_ratios() {
        let w = wl(vec![
            job_with(1, 1, 1, 100, 100), // ratio 1 → bin 0
            job_with(2, 1, 1, 100, 40),  // ratio 2.5 → bin 1
            job_with(3, 1, 1, 100, 10),  // ratio 10 → bin 3
            job_with(4, 1, 1, 100, 0),   // undefined, skipped
        ]);
        let h = overprovisioning_histogram(&w, 8);
        assert_eq!(h.total(), 3);
        assert_eq!(h.count(0), 1);
        assert_eq!(h.count(1), 1);
        assert_eq!(h.count(3), 1);
    }

    #[test]
    fn overprovisioned_fraction_threshold() {
        let w = wl(vec![
            job_with(1, 1, 1, 100, 100),
            job_with(2, 1, 1, 100, 50),
            job_with(3, 1, 1, 100, 25),
            job_with(4, 1, 1, 100, 0),
        ]);
        assert!((overprovisioned_fraction(&w, 2.0) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(overprovisioned_fraction(&Workload::default(), 2.0), 0.0);
    }

    #[test]
    fn log_fit_on_geometric_decay() {
        // Bin fractions decaying by 10x per bin → perfect log-linear fit
        // with slope -1.
        let mut h = LogHistogram::new(1.0, 2.0, 4);
        for _ in 0..1000 {
            h.record(1.0);
        }
        for _ in 0..100 {
            h.record(2.0);
        }
        for _ in 0..10 {
            h.record(4.0);
        }
        h.record(8.0);
        let fit = histogram_log_fit(&h).unwrap();
        assert!((fit.slope + 1.0).abs() < 1e-6);
        assert!(fit.r_squared > 0.999);
    }

    #[test]
    fn log_fit_requires_two_populated_bins() {
        let mut h = LogHistogram::new(1.0, 2.0, 4);
        h.record(1.0);
        assert!(histogram_log_fit(&h).is_none());
    }

    #[test]
    fn size_distribution_buckets() {
        let w = wl(vec![
            job_with(1, 1, 1, 100, 50),
            job_with(2, 1, 1, 100, 50),
            job_with(3, 2, 1, 100, 50),
            job_with(4, 3, 1, 100, 50),
        ]);
        let dist = group_size_distribution(&w);
        // Two groups of size 1, one group of size 2.
        assert_eq!(dist.len(), 2);
        assert_eq!(dist[0].size, 1);
        assert_eq!(dist[0].groups, 2);
        assert!((dist[0].job_fraction - 0.5).abs() < 1e-12);
        assert_eq!(dist[1].size, 2);
        assert_eq!(dist[1].groups, 1);
        assert!((dist[1].job_fraction - 0.5).abs() < 1e-12);
    }

    #[test]
    fn gain_points_computed_per_group() {
        let mut jobs = Vec::new();
        for i in 0..10 {
            // Group A: request 320, usage 40..80 → gain 4, range 2.
            jobs.push(job_with(i, 1, 1, 320, 40 + (i % 2) * 40));
        }
        for i in 10..20 {
            // Group B: request 100, constant usage 100 → gain 1, range 1.
            jobs.push(job_with(i, 2, 1, 100, 100));
        }
        // Too-small group ignored.
        jobs.push(job_with(20, 3, 1, 100, 10));
        let points = gain_vs_range(&wl(jobs), 10);
        assert_eq!(points.len(), 2);
        let a = points.iter().find(|p| p.gain > 2.0).unwrap();
        assert!((a.gain - 4.0).abs() < 1e-12);
        assert!((a.range - 2.0).abs() < 1e-12);
        let b = points.iter().find(|p| p.gain <= 2.0).unwrap();
        assert!((b.gain - 1.0).abs() < 1e-12);
        assert!((b.range - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stats_summary() {
        let w = wl(vec![job_with(1, 1, 1, 100, 50), job_with(2, 1, 1, 100, 50)]);
        let s = trace_stats(&w);
        assert_eq!(s.jobs, 2);
        assert_eq!(s.groups, 1);
        assert!((s.mean_group_size - 2.0).abs() < 1e-12);
        assert!((s.overprovisioned_2x - 1.0).abs() < 1e-12);
        assert!((s.max_ratio - 2.0).abs() < 1e-12);
    }

    #[test]
    fn user_profiles_aggregate_and_sort() {
        use crate::time::Time;
        let mut jobs = vec![
            // User 1: two jobs in one group, ratio 2.
            job_with(1, 1, 1, 100, 50),
            job_with(2, 1, 1, 100, 50),
            // User 2: one heavy job (more node-seconds), exact requester.
            JobBuilder::new(3)
                .user(2)
                .app(9)
                .requested_mem_kb(64)
                .used_mem_kb(64)
                .nodes(100)
                .runtime(Time::from_secs(1_000))
                .build(),
        ];
        jobs[0].nodes = 1;
        jobs[1].nodes = 1;
        let profiles = user_profiles(&wl(jobs));
        assert_eq!(profiles.len(), 2);
        // Heaviest first.
        assert_eq!(profiles[0].user, 2);
        assert_eq!(profiles[0].jobs, 1);
        assert_eq!(profiles[0].groups, 1);
        assert!((profiles[0].median_ratio - 1.0).abs() < 1e-12);
        assert_eq!(profiles[1].user, 1);
        assert_eq!(profiles[1].jobs, 2);
        assert!((profiles[1].median_ratio - 2.0).abs() < 1e-12);
    }

    #[test]
    fn user_profiles_empty() {
        assert!(user_profiles(&Workload::default()).is_empty());
    }

    #[test]
    fn empty_workload_stats() {
        let s = trace_stats(&Workload::default());
        assert_eq!(s.jobs, 0);
        assert_eq!(s.groups, 0);
        assert_eq!(s.mean_group_size, 0.0);
    }
}
