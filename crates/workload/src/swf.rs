//! Standard Workload Format (SWF) v2 reader and writer.
//!
//! SWF is the Parallel Workloads Archive's trace format: one line per job
//! with 18 whitespace-separated integer fields, `-1` meaning "not recorded",
//! and `;`-prefixed header/comment lines. The LANL CM5 file the paper
//! analyses is distributed in this format, so parsing it here lets the real
//! trace replace the synthetic one without touching any experiment code.

use std::fmt;
use std::str::FromStr;

use crate::job::{Job, JobId, JobStatus, Workload};
use crate::time::Time;

/// Metadata gathered from `;`-prefixed header directives.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SwfHeader {
    /// `; MaxNodes:` directive, if present.
    pub max_nodes: Option<u32>,
    /// `; MaxJobs:` directive, if present.
    pub max_jobs: Option<u64>,
    /// `; Computer:` directive, if present.
    pub computer: Option<String>,
    /// All raw header lines, in order, without the leading `;`.
    pub raw: Vec<String>,
}

/// A parse failure, tagged with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwfError {
    /// 1-based line number in the input.
    pub line: usize,
    /// What went wrong.
    pub kind: SwfErrorKind,
}

/// The ways an SWF line can be malformed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SwfErrorKind {
    /// Fewer than 18 fields.
    TooFewFields(usize),
    /// A field failed integer parsing.
    BadField {
        /// 1-based SWF field index.
        field: usize,
        /// Offending token.
        token: String,
    },
}

impl fmt::Display for SwfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            SwfErrorKind::TooFewFields(n) => {
                write!(f, "line {}: expected 18 fields, found {}", self.line, n)
            }
            SwfErrorKind::BadField { field, token } => write!(
                f,
                "line {}: field {} is not an integer: {:?}",
                self.line, field, token
            ),
        }
    }
}

impl std::error::Error for SwfError {}

/// Result of parsing an SWF document: header plus workload.
#[derive(Debug, Clone, PartialEq)]
pub struct SwfTrace {
    /// Header metadata.
    pub header: SwfHeader,
    /// The jobs, ordered by submit time.
    pub workload: Workload,
}

fn parse_header_line(line: &str, header: &mut SwfHeader) {
    let body = line.trim_start_matches(';').trim();
    header.raw.push(body.to_string());
    if let Some(rest) = body.strip_prefix("MaxNodes:") {
        header.max_nodes = rest.trim().parse().ok();
    } else if let Some(rest) = body.strip_prefix("MaxJobs:") {
        header.max_jobs = rest.trim().parse().ok();
    } else if let Some(rest) = body.strip_prefix("Computer:") {
        header.computer = Some(rest.trim().to_string());
    }
}

fn field<T: FromStr>(tokens: &[&str], idx0: usize, line: usize) -> Result<T, SwfError> {
    tokens[idx0].parse().map_err(|_| SwfError {
        line,
        kind: SwfErrorKind::BadField {
            field: idx0 + 1,
            token: tokens[idx0].to_string(),
        },
    })
}

/// Parse one SWF job line (already known not to be a comment).
fn parse_job_line(line_no: usize, line: &str) -> Result<Job, SwfError> {
    let tokens: Vec<&str> = line.split_whitespace().collect();
    if tokens.len() < 18 {
        return Err(SwfError {
            line: line_no,
            kind: SwfErrorKind::TooFewFields(tokens.len()),
        });
    }
    let job_number: i64 = field(&tokens, 0, line_no)?;
    let submit: i64 = field(&tokens, 1, line_no)?;
    let _wait: i64 = field(&tokens, 2, line_no)?;
    let run_time: i64 = field(&tokens, 3, line_no)?;
    let allocated: i64 = field(&tokens, 4, line_no)?;
    let _avg_cpu: f64 = field(&tokens, 5, line_no)?;
    let used_mem: i64 = field(&tokens, 6, line_no)?;
    let requested_procs: i64 = field(&tokens, 7, line_no)?;
    let requested_time: i64 = field(&tokens, 8, line_no)?;
    let requested_mem: i64 = field(&tokens, 9, line_no)?;
    let status: i64 = field(&tokens, 10, line_no)?;
    let user: i64 = field(&tokens, 11, line_no)?;
    let _group: i64 = field(&tokens, 12, line_no)?;
    let app: i64 = field(&tokens, 13, line_no)?;
    // Fields 15-18 (queue, partition, preceding job, think time) are parsed
    // for validation but not retained in the job model.
    for idx0 in 14..18 {
        let _: i64 = field(&tokens, idx0, line_no)?;
    }

    let runtime = Time::from_secs(run_time.max(0) as u64);
    let requested_runtime = if requested_time > 0 {
        Time::from_secs(requested_time as u64)
    } else {
        runtime
    };
    let nodes = if requested_procs > 0 {
        requested_procs as u32
    } else {
        allocated.max(1) as u32
    };
    let used_mem_kb = used_mem.max(0) as u64;
    let requested_mem_kb = if requested_mem > 0 {
        requested_mem as u64
    } else {
        used_mem_kb
    };
    Ok(Job {
        id: JobId(job_number.max(0) as u64),
        user: user.max(0) as u32,
        app: app.max(0) as u32,
        submit: Time::from_secs(submit.max(0) as u64),
        runtime,
        requested_runtime,
        nodes,
        requested_mem_kb,
        used_mem_kb,
        requested_disk_kb: 0,
        used_disk_kb: 0,
        requested_packages: 0,
        used_packages: 0,
        status: match status {
            1 => JobStatus::Completed,
            0 => JobStatus::Failed,
            5 => JobStatus::Cancelled,
            _ => JobStatus::Completed,
        },
    })
}

/// Parse an SWF document from a string.
pub fn parse_str(input: &str) -> Result<SwfTrace, SwfError> {
    let mut header = SwfHeader::default();
    let mut jobs = Vec::new();
    for (i, raw_line) in input.lines().enumerate() {
        let line_no = i + 1;
        let line = raw_line.trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with(';') {
            parse_header_line(line, &mut header);
            continue;
        }
        jobs.push(parse_job_line(line_no, line)?);
    }
    Ok(SwfTrace {
        header,
        workload: Workload::new(jobs),
    })
}

/// Parse an SWF file from disk.
pub fn parse_file(path: &std::path::Path) -> std::io::Result<Result<SwfTrace, SwfError>> {
    let content = std::fs::read_to_string(path)?;
    Ok(parse_str(&content))
}

/// Quantize a workload to what SWF can represent: whole-second submit
/// times, runtimes, and runtime estimates (the simulator's millisecond
/// resolution exceeds the format's). `write_str` followed by `parse_str`
/// reproduces exactly the quantized workload.
pub fn quantize(workload: &Workload) -> Workload {
    Workload::new(
        workload
            .jobs()
            .iter()
            .map(|j| {
                let mut job = j.clone();
                job.submit = Time::from_secs(j.submit.as_secs());
                job.runtime = Time::from_secs(j.runtime.as_secs());
                job.requested_runtime = Time::from_secs(j.requested_runtime.as_secs());
                job
            })
            .collect(),
    )
}

/// Serialize a workload back to SWF text. Fields this model does not track
/// (wait time, CPU time, group, queue, partition, preceding job, think time)
/// are written as `-1`, which SWF defines as "not recorded".
pub fn write_str(workload: &Workload, header_lines: &[&str]) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(workload.len() * 64 + 128);
    for h in header_lines {
        let _ = writeln!(out, "; {h}");
    }
    for j in workload.jobs() {
        let status = match j.status {
            JobStatus::Completed => 1,
            JobStatus::Failed => 0,
            JobStatus::Cancelled => 5,
        };
        let _ = writeln!(
            out,
            "{} {} -1 {} {} -1 {} {} {} {} {} {} -1 {} -1 -1 -1 -1",
            j.id.0,
            j.submit.as_secs(),
            j.runtime.as_secs(),
            j.nodes,
            j.used_mem_kb,
            j.nodes,
            j.requested_runtime.as_secs(),
            j.requested_mem_kb,
            status,
            j.user,
            j.app,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobBuilder;

    const SAMPLE: &str = "\
; Computer: Thinking Machines CM-5
; MaxNodes: 1024
; MaxJobs: 122055
1 0 5 100 32 -1 4096 32 120 32768 1 7 -1 3 1 -1 -1 -1
2 60 0 50 64 -1 1024 64 60 8192 0 8 -1 4 1 -1 -1 -1
3 90 0 10 32 -1 512 -1 -1 -1 5 9 -1 5 1 -1 -1 -1
";

    #[test]
    fn parses_header_directives() {
        let trace = parse_str(SAMPLE).unwrap();
        assert_eq!(trace.header.max_nodes, Some(1024));
        assert_eq!(trace.header.max_jobs, Some(122_055));
        assert_eq!(
            trace.header.computer.as_deref(),
            Some("Thinking Machines CM-5")
        );
        assert_eq!(trace.header.raw.len(), 3);
    }

    #[test]
    fn parses_job_fields() {
        let trace = parse_str(SAMPLE).unwrap();
        let jobs = trace.workload.jobs();
        assert_eq!(jobs.len(), 3);
        let j = &jobs[0];
        assert_eq!(j.id, JobId(1));
        assert_eq!(j.submit, Time::ZERO);
        assert_eq!(j.runtime, Time::from_secs(100));
        assert_eq!(j.requested_runtime, Time::from_secs(120));
        assert_eq!(j.nodes, 32);
        assert_eq!(j.used_mem_kb, 4096);
        assert_eq!(j.requested_mem_kb, 32_768);
        assert_eq!(j.status, JobStatus::Completed);
        assert_eq!(j.user, 7);
        assert_eq!(j.app, 3);
    }

    #[test]
    fn status_codes_map() {
        let trace = parse_str(SAMPLE).unwrap();
        assert_eq!(trace.workload.jobs()[1].status, JobStatus::Failed);
        assert_eq!(trace.workload.jobs()[2].status, JobStatus::Cancelled);
    }

    #[test]
    fn missing_fields_fall_back() {
        let trace = parse_str(SAMPLE).unwrap();
        let j = &trace.workload.jobs()[2];
        // Requested procs -1 → allocated; requested time -1 → runtime;
        // requested mem -1 → used mem.
        assert_eq!(j.nodes, 32);
        assert_eq!(j.requested_runtime, j.runtime);
        assert_eq!(j.requested_mem_kb, j.used_mem_kb);
    }

    #[test]
    fn too_few_fields_is_an_error() {
        let err = parse_str("1 2 3\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert_eq!(err.kind, SwfErrorKind::TooFewFields(3));
    }

    #[test]
    fn bad_integer_is_an_error_with_field_index() {
        let line = "1 0 5 100 32 -1 4096 32 120 oops 1 7 -1 3 1 -1 -1 -1";
        let err = parse_str(line).unwrap_err();
        match err.kind {
            SwfErrorKind::BadField { field, ref token } => {
                assert_eq!(field, 10);
                assert_eq!(token, "oops");
            }
            other => panic!("unexpected error kind {other:?}"),
        }
        // Display is human readable and names the line.
        assert!(err.to_string().contains("line 1"));
    }

    #[test]
    fn blank_lines_and_comments_skipped() {
        let input = "\n; comment\n\n1 0 5 100 32 -1 4096 32 120 32768 1 7 -1 3 1 -1 -1 -1\n\n";
        let trace = parse_str(input).unwrap();
        assert_eq!(trace.workload.len(), 1);
    }

    #[test]
    fn round_trip_preserves_model_fields() {
        let jobs = vec![
            JobBuilder::new(10)
                .user(3)
                .app(9)
                .submit(Time::from_secs(100))
                .runtime(Time::from_secs(500))
                .requested_runtime(Time::from_secs(600))
                .nodes(128)
                .requested_mem_kb(32_768)
                .used_mem_kb(5_300)
                .build(),
            JobBuilder::new(11)
                .submit(Time::from_secs(200))
                .status(JobStatus::Failed)
                .build(),
        ];
        let original = Workload::new(jobs);
        let text = write_str(&original, &["Computer: synthetic"]);
        let reparsed = parse_str(&text).unwrap();
        assert_eq!(reparsed.workload, original);
        assert_eq!(reparsed.header.computer.as_deref(), Some("synthetic"));
    }

    #[test]
    fn quantize_truncates_to_seconds_and_is_idempotent() {
        let jobs = vec![JobBuilder::new(1)
            .submit(Time::from_millis(1_700))
            .runtime(Time::from_millis(2_999))
            .requested_runtime(Time::from_millis(3_500))
            .build()];
        let w = Workload::new(jobs);
        let q = quantize(&w);
        assert_eq!(q.jobs()[0].submit, Time::from_secs(1));
        assert_eq!(q.jobs()[0].runtime, Time::from_secs(2));
        assert_eq!(q.jobs()[0].requested_runtime, Time::from_secs(3));
        assert_eq!(quantize(&q), q);
        // Round trip reproduces the quantized workload exactly.
        let reparsed = parse_str(&write_str(&q, &[])).unwrap();
        assert_eq!(reparsed.workload, q);
    }

    #[test]
    fn write_emits_one_line_per_job_plus_header() {
        let w = Workload::new(vec![JobBuilder::new(1).build()]);
        let text = write_str(&w, &["a", "b"]);
        assert_eq!(text.lines().count(), 3);
        assert!(text.starts_with("; a\n; b\n"));
    }
}
