//! Trace filtering and transformation utilities.
//!
//! Real workload studies rarely replay a trace verbatim: they slice time
//! windows, drop cancelled jobs, focus on heavy users, or split a log into
//! a training prefix (for offline estimator customization — the paper's
//! setup phase) and an evaluation suffix. These combinators keep that
//! plumbing out of experiment code.

use crate::job::{Job, JobStatus, Workload};
use crate::time::Time;

/// Jobs whose submit time lies in `[from, to)`, with submit times shifted
/// so the window starts at zero (ready for standalone replay).
pub fn time_window(workload: &Workload, from: Time, to: Time) -> Workload {
    let jobs = workload
        .jobs()
        .iter()
        .filter(|j| j.submit >= from && j.submit < to)
        .map(|j| {
            let mut job = j.clone();
            job.submit = j.submit - from;
            job
        })
        .collect();
    Workload::new(jobs)
}

/// Keep only jobs matching a predicate.
pub fn filter_jobs(workload: &Workload, mut keep: impl FnMut(&Job) -> bool) -> Workload {
    Workload::new(
        workload
            .jobs()
            .iter()
            .filter(|j| keep(j))
            .cloned()
            .collect(),
    )
}

/// Keep only jobs by the given user.
pub fn by_user(workload: &Workload, user: u32) -> Workload {
    filter_jobs(workload, |j| j.user == user)
}

/// Drop jobs the source trace recorded as cancelled (they never consumed
/// resources and distort slowdown statistics).
pub fn drop_cancelled(workload: &Workload) -> Workload {
    filter_jobs(workload, |j| j.status != JobStatus::Cancelled)
}

/// Split a trace at `fraction` of its jobs (by submit order) into a
/// training prefix and an evaluation suffix — the paper's offline
/// customization phase followed by live estimation.
///
/// # Panics
/// Panics unless `0 < fraction < 1`.
pub fn split_train_eval(workload: &Workload, fraction: f64) -> (Workload, Workload) {
    assert!(
        fraction > 0.0 && fraction < 1.0,
        "split fraction must be in (0, 1)"
    );
    let cut = ((workload.len() as f64 * fraction).round() as usize).clamp(1, workload.len());
    let jobs = workload.jobs();
    let train = Workload::new(jobs[..cut].to_vec());
    let eval = Workload::new(jobs[cut.min(jobs.len())..].to_vec());
    (train, eval)
}

/// Interleave two traces by submit time, renumbering ids in the second to
/// avoid collisions (useful for composing workload mixes).
pub fn merge(a: &Workload, b: &Workload) -> Workload {
    let max_id = a.jobs().iter().map(|j| j.id.0).max().unwrap_or(0);
    let mut jobs = a.jobs().to_vec();
    jobs.extend(b.jobs().iter().map(|j| {
        let mut job = j.clone();
        job.id.0 += max_id + 1;
        job
    }));
    Workload::new(jobs)
}

/// The distinct users present, sorted.
pub fn users(workload: &Workload) -> Vec<u32> {
    let mut out: Vec<u32> = workload.jobs().iter().map(|j| j.user).collect();
    out.sort_unstable();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobBuilder;

    fn trace() -> Workload {
        Workload::new(
            (0..10u64)
                .map(|i| {
                    JobBuilder::new(i)
                        .user((i % 3) as u32)
                        .submit(Time::from_secs(i * 100))
                        .status(if i == 4 {
                            JobStatus::Cancelled
                        } else {
                            JobStatus::Completed
                        })
                        .build()
                })
                .collect(),
        )
    }

    #[test]
    fn window_selects_and_rebases() {
        let w = time_window(&trace(), Time::from_secs(200), Time::from_secs(500));
        assert_eq!(w.len(), 3); // submits 200, 300, 400
        assert_eq!(w.jobs()[0].submit, Time::ZERO);
        assert_eq!(w.jobs()[2].submit, Time::from_secs(200));
    }

    #[test]
    fn window_boundaries_are_half_open() {
        let w = time_window(&trace(), Time::from_secs(0), Time::from_secs(100));
        assert_eq!(w.len(), 1);
        assert_eq!(w.jobs()[0].id.0, 0);
    }

    #[test]
    fn by_user_filters() {
        let w = by_user(&trace(), 1);
        assert_eq!(w.len(), 3); // ids 1, 4, 7
        assert!(w.jobs().iter().all(|j| j.user == 1));
    }

    #[test]
    fn drop_cancelled_removes_only_cancelled() {
        let w = drop_cancelled(&trace());
        assert_eq!(w.len(), 9);
        assert!(w.jobs().iter().all(|j| j.status != JobStatus::Cancelled));
    }

    #[test]
    fn split_respects_fraction_and_order() {
        let (train, eval) = split_train_eval(&trace(), 0.3);
        assert_eq!(train.len(), 3);
        assert_eq!(eval.len(), 7);
        assert!(train
            .jobs()
            .iter()
            .all(|j| j.submit < eval.jobs()[0].submit));
    }

    #[test]
    #[should_panic(expected = "split fraction must be in (0, 1)")]
    fn split_rejects_full_fraction() {
        let _ = split_train_eval(&trace(), 1.0);
    }

    #[test]
    fn merge_renumbers_and_interleaves() {
        let a = trace();
        let b = trace();
        let m = merge(&a, &b);
        assert_eq!(m.len(), 20);
        // No duplicate ids.
        let mut ids: Vec<u64> = m.jobs().iter().map(|j| j.id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 20);
        // Sorted by submit.
        assert!(m.jobs().windows(2).all(|p| p[0].submit <= p[1].submit));
    }

    #[test]
    fn users_deduped_sorted() {
        assert_eq!(users(&trace()), vec![0, 1, 2]);
        assert!(users(&Workload::default()).is_empty());
    }
}
