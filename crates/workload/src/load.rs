//! Offered load computation and rescaling.
//!
//! The paper's Figures 5 and 6 sweep cluster load. The standard methodology
//! (Feitelson, "Metrics for parallel job scheduling and their convergence")
//! keeps the trace's structure and rescales inter-arrival gaps so the same
//! jobs arrive faster or slower, shifting the offered load
//! `Σ nodes·runtime / (cluster_nodes · span)`.

use crate::job::Workload;

#[cfg(test)]
use crate::time::Time;

/// Offered load of a workload against a cluster of `total_nodes` nodes:
/// demanded node-seconds divided by available node-seconds over the trace
/// span (first submission to the last job's completion, had every job run
/// at submission). Returns 0 for empty traces or zero spans.
pub fn offered_load(workload: &Workload, total_nodes: u32) -> f64 {
    if workload.is_empty() || total_nodes == 0 {
        return 0.0;
    }
    let first = workload.jobs()[0].submit;
    let last_end = workload
        .jobs()
        .iter()
        .map(|j| j.submit + j.runtime)
        .max()
        .expect("non-empty");
    let span = last_end.saturating_sub(first).as_secs_f64();
    if span <= 0.0 {
        return 0.0;
    }
    workload.total_node_seconds() / (total_nodes as f64 * span)
}

/// Rescale all inter-arrival gaps by `factor` (< 1 compresses the trace and
/// raises load). The first submission time is preserved; job order, runtimes,
/// and resources are untouched.
pub fn rescale_arrivals(workload: &Workload, factor: f64) -> Workload {
    assert!(
        factor.is_finite() && factor > 0.0,
        "arrival scale factor must be positive"
    );
    let jobs = workload.jobs();
    if jobs.is_empty() {
        return workload.clone();
    }
    let first = jobs[0].submit;
    let rescaled = jobs
        .iter()
        .map(|j| {
            let gap = j.submit.saturating_sub(first);
            let mut job = j.clone();
            job.submit = first + gap.scale(factor);
            job
        })
        .collect();
    Workload::new(rescaled)
}

/// Rescale arrivals so the offered load against `total_nodes` becomes
/// approximately `target`. Because the span includes the tail of the last
/// job's runtime, one scaling step lands slightly off target; fixed-point
/// iteration refines until within 1% or the step stops helping. Targets
/// above the trace's intrinsic ceiling (all arrivals compressed to a point,
/// span dominated by the longest runtime) converge to the ceiling instead.
pub fn scale_to_load(workload: &Workload, total_nodes: u32, target: f64) -> Workload {
    assert!(target > 0.0, "target load must be positive");
    let mut current = workload.clone();
    for _ in 0..12 {
        let load = offered_load(&current, total_nodes);
        if load <= 0.0 || (load - target).abs() / target < 0.01 {
            return current;
        }
        let factor = load / target;
        let next = rescale_arrivals(&current, factor);
        // Compression has a floor: when every gap is already zero, further
        // scaling is a no-op.
        if next == current {
            return current;
        }
        current = next;
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobBuilder;

    fn uniform_trace(n: u64, gap_s: u64, nodes: u32, runtime_s: u64) -> Workload {
        Workload::new(
            (0..n)
                .map(|i| {
                    JobBuilder::new(i)
                        .submit(Time::from_secs(i * gap_s))
                        .runtime(Time::from_secs(runtime_s))
                        .nodes(nodes)
                        .build()
                })
                .collect(),
        )
    }

    #[test]
    fn offered_load_of_known_trace() {
        // 10 jobs, 1 node x 10 s each = 100 node-seconds.
        // Span: first submit 0 to last end 9*10+10 = 100 s. 4 nodes.
        let w = uniform_trace(10, 10, 1, 10);
        let load = offered_load(&w, 4);
        assert!((load - 100.0 / 400.0).abs() < 1e-9);
    }

    #[test]
    fn offered_load_edge_cases() {
        assert_eq!(offered_load(&Workload::default(), 16), 0.0);
        let w = uniform_trace(5, 10, 1, 10);
        assert_eq!(offered_load(&w, 0), 0.0);
    }

    #[test]
    fn rescaling_halves_gaps() {
        let w = uniform_trace(3, 100, 1, 10);
        let fast = rescale_arrivals(&w, 0.5);
        let submits: Vec<u64> = fast.jobs().iter().map(|j| j.submit.as_secs()).collect();
        assert_eq!(submits, vec![0, 50, 100]);
    }

    #[test]
    fn rescaling_preserves_first_submit_and_order() {
        let mut jobs = uniform_trace(3, 100, 1, 10).into_jobs();
        for j in &mut jobs {
            j.submit += Time::from_secs(1000);
        }
        let w = Workload::new(jobs);
        let slow = rescale_arrivals(&w, 2.0);
        assert_eq!(slow.jobs()[0].submit, Time::from_secs(1000));
        assert_eq!(slow.jobs()[2].submit, Time::from_secs(1400));
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn rescale_rejects_zero_factor() {
        let _ = rescale_arrivals(&uniform_trace(2, 10, 1, 10), 0.0);
    }

    #[test]
    fn scale_to_load_converges() {
        let w = uniform_trace(200, 100, 8, 50);
        for target in [0.3, 0.6, 0.9] {
            let scaled = scale_to_load(&w, 16, target);
            let achieved = offered_load(&scaled, 16);
            assert!(
                (achieved - target).abs() / target < 0.05,
                "target {target}, achieved {achieved}"
            );
        }
    }

    #[test]
    fn scale_preserves_job_bodies() {
        let w = uniform_trace(10, 100, 4, 25);
        let scaled = scale_to_load(&w, 16, 0.8);
        assert_eq!(scaled.len(), w.len());
        for (a, b) in w.jobs().iter().zip(scaled.jobs()) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.runtime, b.runtime);
            assert_eq!(a.nodes, b.nodes);
            assert_eq!(a.requested_mem_kb, b.requested_mem_kb);
        }
    }
}
