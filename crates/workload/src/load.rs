//! Offered load computation and rescaling.
//!
//! The paper's Figures 5 and 6 sweep cluster load. The standard methodology
//! (Feitelson, "Metrics for parallel job scheduling and their convergence")
//! keeps the trace's structure and rescales inter-arrival gaps so the same
//! jobs arrive faster or slower, shifting the offered load
//! `Σ nodes·runtime / (cluster_nodes · span)`.

use crate::job::{Job, Workload};

#[cfg(test)]
use crate::time::Time;

/// Offered load of a workload against a cluster of `total_nodes` nodes:
/// demanded node-seconds divided by available node-seconds over the trace
/// span (first submission to the last job's completion, had every job run
/// at submission). Returns 0 for empty traces or zero spans.
pub fn offered_load(workload: &Workload, total_nodes: u32) -> f64 {
    offered_load_of(workload.jobs(), total_nodes)
}

fn offered_load_of(jobs: &[Job], total_nodes: u32) -> f64 {
    let (Some(first), Some(last_end)) = (
        jobs.first().map(|j| j.submit),
        jobs.iter().map(|j| j.submit + j.runtime).max(),
    ) else {
        return 0.0;
    };
    if total_nodes == 0 {
        return 0.0;
    }
    let span = last_end.saturating_sub(first).as_secs_f64();
    if span <= 0.0 {
        return 0.0;
    }
    let node_seconds: f64 = jobs.iter().map(Job::node_seconds).sum();
    node_seconds / (total_nodes as f64 * span)
}

/// Rescale all inter-arrival gaps by `factor` (< 1 compresses the trace and
/// raises load). The first submission time is preserved; job order, runtimes,
/// and resources are untouched.
pub fn rescale_arrivals(workload: &Workload, factor: f64) -> Workload {
    assert!(
        factor.is_finite() && factor > 0.0,
        "arrival scale factor must be positive"
    );
    let jobs = workload.jobs();
    if jobs.is_empty() {
        return workload.clone();
    }
    let first = jobs
        .first()
        .expect("invariant: emptiness checked above")
        .submit;
    let rescaled = jobs
        .iter()
        .map(|j| {
            let gap = j.submit.saturating_sub(first);
            let mut job = j.clone();
            job.submit = first + gap.scale(factor);
            job
        })
        .collect();
    Workload::new(rescaled)
}

/// Rescale arrivals so the offered load against `total_nodes` becomes
/// approximately `target`. Because the span includes the tail of the last
/// job's runtime, one scaling step lands slightly off target; fixed-point
/// iteration refines until within 1% or the step stops helping. Targets
/// above the trace's intrinsic ceiling (all arrivals compressed to a point,
/// span dominated by the longest runtime) converge to the ceiling instead.
pub fn scale_to_load(workload: &Workload, total_nodes: u32, target: f64) -> Workload {
    let mut jobs = Vec::new();
    scale_to_load_into(workload, total_nodes, target, &mut jobs);
    // The in-place rescale is monotone in the original gaps, so sorted
    // input stays sorted.
    Workload::from_sorted(jobs)
}

/// [`scale_to_load`] into a caller-owned buffer: `out` is cleared, refilled
/// with the workload's jobs, and rescaled in place. Sweeps that visit many
/// load points recycle one buffer instead of allocating a trace-sized
/// vector per point; the result is byte-identical to [`scale_to_load`].
pub fn scale_to_load_into(workload: &Workload, total_nodes: u32, target: f64, out: &mut Vec<Job>) {
    assert!(target > 0.0, "target load must be positive");
    out.clear();
    out.extend_from_slice(workload.jobs());
    for _ in 0..12 {
        let load = offered_load_of(out, total_nodes);
        if load <= 0.0 || (load - target).abs() / target < 0.01 {
            return;
        }
        let factor = load / target;
        assert!(
            factor.is_finite() && factor > 0.0,
            "arrival scale factor must be positive"
        );
        let Some(first) = out.first().map(|j| j.submit) else {
            return;
        };
        // Compression has a floor: when every gap is already zero, further
        // scaling is a no-op.
        let mut changed = false;
        for job in out.iter_mut() {
            let gap = job.submit.saturating_sub(first);
            let scaled = first + gap.scale(factor);
            changed |= scaled != job.submit;
            job.submit = scaled;
        }
        if !changed {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobBuilder;

    fn uniform_trace(n: u64, gap_s: u64, nodes: u32, runtime_s: u64) -> Workload {
        Workload::new(
            (0..n)
                .map(|i| {
                    JobBuilder::new(i)
                        .submit(Time::from_secs(i * gap_s))
                        .runtime(Time::from_secs(runtime_s))
                        .nodes(nodes)
                        .build()
                })
                .collect(),
        )
    }

    #[test]
    fn offered_load_of_known_trace() {
        // 10 jobs, 1 node x 10 s each = 100 node-seconds.
        // Span: first submit 0 to last end 9*10+10 = 100 s. 4 nodes.
        let w = uniform_trace(10, 10, 1, 10);
        let load = offered_load(&w, 4);
        assert!((load - 100.0 / 400.0).abs() < 1e-9);
    }

    #[test]
    fn offered_load_edge_cases() {
        assert_eq!(offered_load(&Workload::default(), 16), 0.0);
        let w = uniform_trace(5, 10, 1, 10);
        assert_eq!(offered_load(&w, 0), 0.0);
    }

    #[test]
    fn rescaling_halves_gaps() {
        let w = uniform_trace(3, 100, 1, 10);
        let fast = rescale_arrivals(&w, 0.5);
        let submits: Vec<u64> = fast.jobs().iter().map(|j| j.submit.as_secs()).collect();
        assert_eq!(submits, vec![0, 50, 100]);
    }

    #[test]
    fn rescaling_preserves_first_submit_and_order() {
        let mut jobs = uniform_trace(3, 100, 1, 10).into_jobs();
        for j in &mut jobs {
            j.submit += Time::from_secs(1000);
        }
        let w = Workload::new(jobs);
        let slow = rescale_arrivals(&w, 2.0);
        assert_eq!(slow.jobs()[0].submit, Time::from_secs(1000));
        assert_eq!(slow.jobs()[2].submit, Time::from_secs(1400));
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn rescale_rejects_zero_factor() {
        let _ = rescale_arrivals(&uniform_trace(2, 10, 1, 10), 0.0);
    }

    #[test]
    fn scale_to_load_converges() {
        let w = uniform_trace(200, 100, 8, 50);
        for target in [0.3, 0.6, 0.9] {
            let scaled = scale_to_load(&w, 16, target);
            let achieved = offered_load(&scaled, 16);
            assert!(
                (achieved - target).abs() / target < 0.05,
                "target {target}, achieved {achieved}"
            );
        }
    }

    #[test]
    fn scale_into_matches_allocating_path() {
        let w = uniform_trace(200, 100, 8, 50);
        let mut buf = Vec::new();
        for target in [0.3, 0.6, 0.9, 5.0] {
            let owned = scale_to_load(&w, 16, target);
            scale_to_load_into(&w, 16, target, &mut buf);
            assert_eq!(owned.jobs(), &buf[..], "target {target}");
        }
    }

    #[test]
    fn scale_preserves_job_bodies() {
        let w = uniform_trace(10, 100, 4, 25);
        let scaled = scale_to_load(&w, 16, 0.8);
        assert_eq!(scaled.len(), w.len());
        for (a, b) in w.jobs().iter().zip(scaled.jobs()) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.runtime, b.runtime);
            assert_eq!(a.nodes, b.nodes);
            assert_eq!(a.requested_mem_kb, b.requested_mem_kb);
        }
    }
}
