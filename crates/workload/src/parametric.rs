//! A second, independent synthetic workload family.
//!
//! The calibrated CM5 generator ([`crate::synthetic`]) is tuned to the
//! paper's trace. To check that the paper's conclusions are not an artifact
//! of that tuning, this module generates workloads from a *parametric*
//! model in the style of Lublin & Feitelson's widely used parallel-workload
//! model: gamma-distributed inter-arrivals with a diurnal cycle,
//! hyper-exponential-flavored (two-branch log-normal) runtimes, and
//! power-of-two node counts — with an over-provisioning layer (requested
//! vs. used memory) grafted on, since classic models predate that concern.
//!
//! The robustness experiment (`robustness_workloads`) replays the paper's
//! headline comparison on this family.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use resmatch_stats::distributions::{Gamma, LogNormal, UniformSource, Zipf};

use crate::job::{Job, JobBuilder, Workload};
use crate::time::Time;

const MB: u64 = 1024;

/// Parameters of the parametric model. Defaults give a plausible
/// medium-size machine workload; every knob is independent of the CM5
/// calibration.
#[derive(Debug, Clone)]
pub struct ParametricConfig {
    /// Number of jobs.
    pub jobs: usize,
    /// User population (activity is Zipf-distributed across them).
    pub users: u32,
    /// Mean inter-arrival gap, seconds.
    pub mean_interarrival_s: f64,
    /// Gamma shape of inter-arrivals (< 1 = bursty).
    pub interarrival_shape: f64,
    /// Median runtime of the short-job branch, seconds.
    pub short_runtime_median_s: f64,
    /// Median runtime of the long-job branch, seconds.
    pub long_runtime_median_s: f64,
    /// Probability a job belongs to the long branch.
    pub long_job_fraction: f64,
    /// Log-space sigma for both runtime branches.
    pub runtime_sigma: f64,
    /// Largest node count (a power of two).
    pub max_nodes: u32,
    /// Node memory of the machine the users believe they target, KB.
    pub machine_mem_kb: u64,
    /// Probability a job requests exactly what it uses.
    pub exact_request_fraction: f64,
    /// Rate of the log2-space exponential over-provisioning tail.
    pub ratio_log2_rate: f64,
}

impl Default for ParametricConfig {
    fn default() -> Self {
        ParametricConfig {
            jobs: 20_000,
            users: 120,
            mean_interarrival_s: 500.0,
            interarrival_shape: 0.6,
            short_runtime_median_s: 120.0,
            long_runtime_median_s: 3_600.0,
            long_job_fraction: 0.35,
            runtime_sigma: 1.0,
            max_nodes: 512,
            machine_mem_kb: 32 * MB,
            exact_request_fraction: 0.3,
            ratio_log2_rate: 0.8,
        }
    }
}

struct RngSource<'a>(&'a mut StdRng);

impl UniformSource for RngSource<'_> {
    fn uniform(&mut self) -> f64 {
        self.0.random()
    }
}

/// Generate a parametric workload. Deterministic per `(cfg, seed)`.
pub fn generate_parametric(cfg: &ParametricConfig, seed: u64) -> Workload {
    assert!(cfg.jobs > 0, "must generate at least one job");
    assert!(
        cfg.max_nodes.is_power_of_two(),
        "max nodes must be a power of two"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let interarrival = Gamma::new(
        cfg.interarrival_shape,
        cfg.mean_interarrival_s / cfg.interarrival_shape,
    );
    let short = LogNormal::from_median(cfg.short_runtime_median_s, cfg.runtime_sigma);
    let long = LogNormal::from_median(cfg.long_runtime_median_s, cfg.runtime_sigma);
    let user_activity = Zipf::new(cfg.users as usize, 1.2);
    // Node counts: powers of two up to max, weighted toward small.
    let exponents = (cfg.max_nodes.trailing_zeros() + 1) as usize;
    let node_zipf = Zipf::new(exponents, 0.9);

    let mut clock_s = 0.0f64;
    let mut jobs = Vec::with_capacity(cfg.jobs);
    for id in 0..cfg.jobs {
        let mut src = RngSource(&mut rng);
        clock_s += interarrival.sample(&mut src);
        let user = user_activity.sample(&mut src) as u32 - 1;
        let nodes = 1u32 << (node_zipf.sample(&mut src) - 1);
        let runtime_s = if src.uniform() < cfg.long_job_fraction {
            long.sample(&mut src)
        } else {
            short.sample(&mut src)
        }
        .clamp(5.0, 172_800.0);

        // Request: a power-of-two fraction of machine memory, biased high.
        let req_div = 1u64 << (node_zipf.sample(&mut src).min(4) - 1); // 1,2,4,8
        let requested = cfg.machine_mem_kb / req_div;
        let ratio = if src.uniform() < cfg.exact_request_fraction {
            1.0
        } else {
            let u = src.uniform().max(1e-12);
            2f64.powf((-u.ln() / cfg.ratio_log2_rate).min(8.0))
        };
        let used = ((requested as f64 / ratio) as u64).clamp(64, requested);

        let runtime = Time::from_secs_f64(runtime_s);
        let mut src = RngSource(&mut rng);
        let estimate_factor = 1.0 + 2.0 * src.uniform();
        jobs.push(
            JobBuilder::new(id as u64 + 1)
                .user(user)
                .app(user % 17) // a handful of apps per user
                .submit(Time::from_secs_f64(clock_s))
                .runtime(runtime)
                .requested_runtime(runtime.scale(estimate_factor))
                .nodes(nodes)
                .requested_mem_kb(requested)
                .used_mem_kb(used)
                .build(),
        );
    }
    Workload::new(jobs)
}

/// Convenience check used by tests and the robustness binary: does this
/// workload uphold the paper's standing assumptions?
pub fn upholds_assumptions(workload: &Workload) -> bool {
    workload.jobs().iter().all(Job::request_covers_usage)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(jobs: usize, seed: u64) -> Workload {
        generate_parametric(
            &ParametricConfig {
                jobs,
                ..ParametricConfig::default()
            },
            seed,
        )
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        assert_eq!(small(500, 1), small(500, 1));
        assert_ne!(small(500, 1), small(500, 2));
    }

    #[test]
    fn structural_invariants() {
        let w = small(3_000, 7);
        assert_eq!(w.len(), 3_000);
        assert!(upholds_assumptions(&w));
        for j in w.jobs() {
            assert!(j.nodes.is_power_of_two());
            assert!(j.nodes <= 512);
            assert!(j.requested_mem_kb <= 32 * MB);
            assert!(j.used_mem_kb >= 64);
            assert!(j.requested_runtime >= j.runtime);
        }
        assert!(w.jobs().windows(2).all(|p| p[0].submit <= p[1].submit));
    }

    #[test]
    fn over_provisioning_exists_but_differs_from_cm5() {
        let w = small(20_000, 42);
        let frac2 = crate::analysis::overprovisioned_fraction(&w, 2.0);
        // Some over-provisioning by construction, but this family is NOT
        // calibrated to the paper's 32.8%.
        assert!(frac2 > 0.15 && frac2 < 0.75, "P(>=2x) = {frac2}");
    }

    #[test]
    fn bursty_arrivals_have_high_cv() {
        let w = small(5_000, 3);
        let gaps: Vec<f64> = w
            .jobs()
            .windows(2)
            .map(|p| (p[1].submit.saturating_sub(p[0].submit)).as_secs_f64())
            .collect();
        let s = resmatch_stats::Summary::from_slice(&gaps);
        let cv = s.std_dev() / s.mean;
        assert!(cv > 1.0, "gamma shape < 1 must give CV > 1, got {cv}");
    }

    #[test]
    fn similarity_groups_form() {
        let w = small(5_000, 9);
        let stats = crate::analysis::trace_stats(&w);
        assert!(stats.groups > 50, "groups {}", stats.groups);
        assert!(
            stats.mean_group_size > 2.0,
            "mean {}",
            stats.mean_group_size
        );
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn validates_max_nodes() {
        let _ = generate_parametric(
            &ParametricConfig {
                max_nodes: 100,
                ..ParametricConfig::default()
            },
            0,
        );
    }
}
