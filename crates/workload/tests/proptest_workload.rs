//! Property-based tests for the workload substrate: SWF round-trips,
//! load-rescaling laws, and generator invariants.

use proptest::prelude::*;
use resmatch_workload::job::{Job, JobBuilder, JobStatus, Workload};
use resmatch_workload::load::{offered_load, rescale_arrivals, scale_to_load};
use resmatch_workload::swf;
use resmatch_workload::synthetic::{generate, Cm5Config};
use resmatch_workload::Time;

fn arb_status() -> impl Strategy<Value = JobStatus> {
    prop_oneof![
        Just(JobStatus::Completed),
        Just(JobStatus::Failed),
        Just(JobStatus::Cancelled),
    ]
}

prop_compose! {
    fn arb_job()(
        id in 1u64..1_000_000,
        user in 0u32..500,
        app in 0u32..100,
        submit_s in 0u64..10_000_000,
        runtime_s in 1u64..100_000,
        extra_runtime_s in 0u64..100_000,
        nodes in 1u32..1025,
        used_mem in 1u64..40_000,
        headroom in 0u64..40_000,
        status in arb_status(),
    ) -> Job {
        JobBuilder::new(id)
            .user(user)
            .app(app)
            .submit(Time::from_secs(submit_s))
            .runtime(Time::from_secs(runtime_s))
            .requested_runtime(Time::from_secs(runtime_s + extra_runtime_s))
            .nodes(nodes)
            .used_mem_kb(used_mem)
            .requested_mem_kb(used_mem + headroom)
            .status(status)
            .build()
    }
}

proptest! {
    #[test]
    fn swf_round_trip(jobs in prop::collection::vec(arb_job(), 1..60)) {
        let original = Workload::new(jobs);
        let text = swf::write_str(&original, &["prop"]);
        let reparsed = swf::parse_str(&text).unwrap();
        prop_assert_eq!(reparsed.workload, original);
    }

    #[test]
    fn rescale_preserves_everything_but_submits(
        jobs in prop::collection::vec(arb_job(), 1..40),
        factor in 0.01f64..10.0,
    ) {
        let w = Workload::new(jobs);
        let scaled = rescale_arrivals(&w, factor);
        prop_assert_eq!(scaled.len(), w.len());
        for (a, b) in w.jobs().iter().zip(scaled.jobs()) {
            prop_assert_eq!(a.id, b.id);
            prop_assert_eq!(a.runtime, b.runtime);
            prop_assert_eq!(a.nodes, b.nodes);
            prop_assert_eq!(a.requested_mem_kb, b.requested_mem_kb);
            prop_assert_eq!(a.used_mem_kb, b.used_mem_kb);
        }
        // Order of submission is preserved.
        prop_assert!(scaled
            .jobs()
            .windows(2)
            .all(|p| p[0].submit <= p[1].submit));
    }

    #[test]
    fn rescale_identity(jobs in prop::collection::vec(arb_job(), 1..40)) {
        let w = Workload::new(jobs);
        let same = rescale_arrivals(&w, 1.0);
        prop_assert_eq!(same, w);
    }

    #[test]
    fn scale_to_load_hits_target(
        jobs in prop::collection::vec(arb_job(), 20..60),
        target in 0.2f64..2.0,
    ) {
        let w = Workload::new(jobs);
        let nodes = 2048;
        prop_assume!(offered_load(&w, nodes) > 1e-9);
        // Compressing arrivals cannot push the load beyond the ceiling
        // where all jobs arrive at once and the span is the longest
        // runtime; only assert targets comfortably below that ceiling.
        let max_runtime = w
            .jobs()
            .iter()
            .map(|j| j.runtime.as_secs_f64())
            .fold(0.0, f64::max);
        let ceiling = w.total_node_seconds() / (nodes as f64 * max_runtime);
        prop_assume!(target < ceiling * 0.7);
        let scaled = scale_to_load(&w, nodes, target);
        let achieved = offered_load(&scaled, nodes);
        // Two fixed-point iterations land within 20% even for short traces
        // whose spans are runtime-dominated.
        prop_assert!(
            (achieved - target).abs() / target < 0.2,
            "target {target}, achieved {achieved}, ceiling {ceiling}"
        );
    }

    #[test]
    fn generator_invariants(jobs in 10usize..600, seed in 0u64..50) {
        let w = generate(
            &Cm5Config {
                jobs,
                ..Cm5Config::default()
            },
            seed,
        );
        prop_assert_eq!(w.len(), jobs);
        for j in w.jobs() {
            prop_assert!(j.request_covers_usage());
            prop_assert!(j.used_mem_kb > 0);
            prop_assert!(j.requested_mem_kb <= 32 * 1024);
            prop_assert!(j.nodes >= 32 && j.nodes <= 1024);
            prop_assert!(j.runtime >= Time::from_secs(1));
            prop_assert!(j.requested_runtime >= j.runtime);
        }
        prop_assert!(w.jobs().windows(2).all(|p| p[0].submit <= p[1].submit));
    }

    #[test]
    fn generator_is_pure(jobs in 10usize..200, seed in 0u64..20) {
        let cfg = Cm5Config {
            jobs,
            ..Cm5Config::default()
        };
        prop_assert_eq!(generate(&cfg, seed), generate(&cfg, seed));
    }
}
