//! Minimal CSV rendering shared by the sweep exporters.
//!
//! Two failure classes motivated pulling this out of
//! [`crate::experiment`]: headers and rows drifting apart (a column added
//! to one but not the other silently misaligns every downstream plot), and
//! float formatting — a decimal *comma* inside an unquoted cell shifts
//! every column after it. [`CsvWriter`] pins the column count at
//! construction and checks every row against it; [`float`] guarantees a
//! `.` decimal separator and comma-free output for any `f64`.

use std::fmt::Write as _;

/// Render an `f64` for a CSV cell: locale-independent (always a `.`
/// decimal separator — Rust's `Display` never consults the C locale, and
/// this helper is the single place that invariant is relied on), shortest
/// round-trippable form, and guaranteed free of `,`, quotes, and
/// newlines.
pub fn float(v: f64) -> String {
    let s = format!("{v}");
    debug_assert!(
        !s.contains([',', '"', '\n']),
        "float cell must not need CSV escaping: {s:?}"
    );
    s
}

/// Incremental CSV builder with a fixed header.
///
/// The header is written at construction; every row is checked against
/// the header's column count. Cells are written verbatim — callers pass
/// pre-rendered strings (see [`float`]) and must not include separators.
#[derive(Debug, Clone)]
pub struct CsvWriter {
    columns: usize,
    out: String,
}

impl CsvWriter {
    /// Start a document with the given column names as its header row.
    ///
    /// # Panics
    /// If `header` is empty or any column name contains a CSV
    /// metacharacter.
    pub fn new(header: &[&str]) -> Self {
        assert!(
            !header.is_empty(),
            "CSV header must name at least one column"
        );
        for col in header {
            assert!(
                !col.contains([',', '"', '\n', '\r']),
                "column name {col:?} contains a CSV metacharacter"
            );
        }
        let mut out = String::new();
        let _ = writeln!(out, "{}", header.join(","));
        CsvWriter {
            columns: header.len(),
            out,
        }
    }

    /// Append one row.
    ///
    /// # Panics
    /// If the cell count differs from the header's column count, or a
    /// cell contains a CSV metacharacter.
    pub fn row<I>(&mut self, cells: I)
    where
        I: IntoIterator,
        I::Item: AsRef<str>,
    {
        let mut n = 0usize;
        for (i, cell) in cells.into_iter().enumerate() {
            let cell = cell.as_ref();
            assert!(
                !cell.contains([',', '"', '\n', '\r']),
                "cell {cell:?} contains a CSV metacharacter"
            );
            if i > 0 {
                self.out.push(',');
            }
            self.out.push_str(cell);
            n += 1;
        }
        assert_eq!(
            n, self.columns,
            "row has {n} cells but the header declares {} columns",
            self.columns
        );
        self.out.push('\n');
    }

    /// Number of columns declared by the header.
    pub fn columns(&self) -> usize {
        self.columns
    }

    /// Finish and return the document.
    pub fn finish(self) -> String {
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_then_rows() {
        let mut w = CsvWriter::new(&["a", "b", "c"]);
        w.row(["1", "2", "3"]);
        w.row([float(0.5), float(f64::NAN), float(1e300)]);
        let doc = w.finish();
        let lines: Vec<&str> = doc.lines().collect();
        assert_eq!(lines[0], "a,b,c");
        assert_eq!(lines.len(), 3);
        for line in &lines {
            assert_eq!(line.split(',').count(), 3, "misaligned row {line:?}");
        }
    }

    #[test]
    fn floats_use_point_decimal_separator() {
        assert_eq!(float(0.5), "0.5");
        assert_eq!(float(-3.25), "-3.25");
        assert_eq!(float(2.0), "2");
        for v in [0.1, 123456.789, f64::INFINITY, f64::NAN, 1e-12] {
            let s = float(v);
            assert!(!s.contains(','), "{s:?}");
        }
    }

    #[test]
    #[should_panic(expected = "columns")]
    fn short_row_is_rejected() {
        let mut w = CsvWriter::new(&["a", "b"]);
        w.row(["only-one"]);
    }
}
