//! Struct-of-arrays storage for in-flight jobs and executions.
//!
//! The engine's per-job state used to live in arrays sized by the whole
//! trace (`Vec<Progress>`, `scope_by_job`, a borrowed `&[Job]` slice) plus
//! an array-of-structs `Vec<Option<Running>>` slab. At trace scale that
//! layout pays for every job ever submitted; these stores pay only for the
//! jobs *currently* queued or running — slots are recycled through free
//! lists, so a 10-million-job stream peaks at queue-depth-plus-concurrency
//! entries, and a cleared store keeps its capacity for arena reuse across
//! sweep points.

use resmatch_cluster::Allocation;
use resmatch_workload::{Job, Time};

/// Dense store of *active* jobs — every job that is queued or running right
/// now, and nothing else. A slot is claimed at arrival, persists across
/// failed executions and re-admissions (its retry progress and estimate
/// scope ride along), and is released when the job completes or is
/// abandoned.
///
/// Columns are parallel and indexed by the slot id the engine threads
/// through [`crate::queue::Queued::job`] and the run table:
///
/// - `jobs` — the job itself (all-inline fields, so a slot rewrite is a
///   memcpy);
/// - `failed_execs` / `wasted` — retry progress, formerly `Vec<Progress>`
///   sized by the whole trace;
/// - `scope` — the memoized estimate-scope encoding (the engine's
///   `SCOPE_*` constants), formerly `scope_by_job`.
#[derive(Debug, Default)]
pub(crate) struct JobStore {
    jobs: Vec<Job>,
    failed_execs: Vec<u32>,
    wasted: Vec<f64>,
    scope: Vec<u32>,
    free: Vec<u32>,
}

impl JobStore {
    /// Claim a slot for a newly arrived job. Progress starts at zero and
    /// the scope memo at `unresolved_scope` (the engine's
    /// `SCOPE_UNRESOLVED`).
    pub(crate) fn insert(&mut self, job: Job, unresolved_scope: u32) -> usize {
        if let Some(slot) = self.free.pop() {
            let s = slot as usize;
            self.jobs[s] = job;
            self.failed_execs[s] = 0;
            self.wasted[s] = 0.0;
            self.scope[s] = unresolved_scope;
            s
        } else {
            self.jobs.push(job);
            self.failed_execs.push(0);
            self.wasted.push(0.0);
            self.scope.push(unresolved_scope);
            self.jobs.len() - 1
        }
    }

    /// Release a slot once its job completed or was abandoned. The slot id
    /// may be handed out again by the next [`JobStore::insert`].
    pub(crate) fn release(&mut self, slot: usize) {
        debug_assert!(slot < self.jobs.len());
        debug_assert!(!self.free.contains(&(slot as u32)), "double release");
        self.free.push(slot as u32);
    }

    /// The job occupying `slot`.
    #[inline]
    pub(crate) fn job(&self, slot: usize) -> &Job {
        &self.jobs[slot]
    }

    /// Memoized estimate-scope encoding for `slot`.
    #[inline]
    pub(crate) fn scope(&self, slot: usize) -> u32 {
        self.scope[slot]
    }

    /// Record the resolved estimate scope for `slot`.
    #[inline]
    pub(crate) fn set_scope(&mut self, slot: usize, scope: u32) {
        self.scope[slot] = scope;
    }

    /// Failed executions accumulated by the job in `slot`.
    #[inline]
    pub(crate) fn failed_execs(&self, slot: usize) -> u32 {
        self.failed_execs[slot]
    }

    /// Node-seconds burned by the failed executions of the job in `slot`.
    #[inline]
    pub(crate) fn wasted(&self, slot: usize) -> f64 {
        self.wasted[slot]
    }

    /// Account one failed execution that burned `wasted_node_seconds`.
    #[inline]
    pub(crate) fn add_failure(&mut self, slot: usize, wasted_node_seconds: f64) {
        self.failed_execs[slot] += 1;
        self.wasted[slot] += wasted_node_seconds;
    }

    /// Drop every entry but keep the columns' capacity (arena reuse).
    pub(crate) fn clear(&mut self) {
        self.jobs.clear();
        self.failed_execs.clear();
        self.wasted.clear();
        self.scope.clear();
        self.free.clear();
    }
}

/// Flag bits for a running execution (see [`RunTable`]).
pub(crate) mod run_flags {
    /// Granted demand was strictly below the user request.
    pub(crate) const LOWERED: u8 = 1 << 0;
    /// Estimation strictly enlarged the candidate-machine set.
    pub(crate) const BENEFITED: u8 = 1 << 1;
    /// The execution was granted the full user request (no estimation).
    pub(crate) const AT_REQUEST: u8 = 1 << 2;
    /// The allocation genuinely cannot hold the job (as opposed to an
    /// injected fault).
    pub(crate) const RESOURCE_FAILURE: u8 = 1 << 3;
}

/// Everything a finished execution hands back to the engine.
pub(crate) struct FinishedRun {
    /// [`JobStore`] slot of the job that was executing.
    pub(crate) job_slot: usize,
    /// When the execution started.
    pub(crate) start: Time,
    /// Conservative completion estimate it was inserted with.
    pub(crate) expected_end: Time,
    /// The allocation to release.
    pub(crate) alloc: Allocation,
    /// [`run_flags`] bits.
    pub(crate) flags: u8,
}

/// Struct-of-arrays slab of running executions, indexed by run id.
///
/// Replaces `Vec<Option<Running>>`: the EASY reservation path reads only
/// `alloc` (through [`RunTable::alloc`]) while computing eligible-node
/// counts, so the scheduling hot loop no longer drags start times and
/// flag bytes through the cache. Finished ids are recycled — `peek_id`
/// before allocation, confirmed by `insert` — keeping the slab at
/// peak-concurrency size.
#[derive(Debug, Default)]
pub(crate) struct RunTable {
    job_slot: Vec<u32>,
    start: Vec<Time>,
    expected_end: Vec<Time>,
    alloc: Vec<Option<Allocation>>,
    flags: Vec<u8>,
    free: Vec<u64>,
    live: usize,
}

impl RunTable {
    /// The id the next [`RunTable::insert`] will use. Peeked, not popped:
    /// a refused allocation must leave the free list untouched.
    #[inline]
    pub(crate) fn peek_id(&self) -> u64 {
        self.free
            .last()
            .copied()
            .unwrap_or(self.job_slot.len() as u64)
    }

    /// Register a started execution under `run_id` (which must be the
    /// current [`RunTable::peek_id`]).
    pub(crate) fn insert(
        &mut self,
        run_id: u64,
        job_slot: usize,
        start: Time,
        expected_end: Time,
        alloc: Allocation,
        flags: u8,
    ) {
        debug_assert_eq!(run_id, self.peek_id());
        let idx = run_id as usize;
        if idx < self.job_slot.len() {
            self.free.pop();
            debug_assert!(self.alloc[idx].is_none());
            self.job_slot[idx] = job_slot as u32;
            self.start[idx] = start;
            self.expected_end[idx] = expected_end;
            self.alloc[idx] = Some(alloc);
            self.flags[idx] = flags;
        } else {
            self.job_slot.push(job_slot as u32);
            self.start.push(start);
            self.expected_end.push(expected_end);
            self.alloc.push(Some(alloc));
            self.flags.push(flags);
        }
        self.live += 1;
    }

    /// Remove the execution under `run_id`, recycling the id.
    pub(crate) fn take(&mut self, run_id: u64) -> FinishedRun {
        let idx = run_id as usize;
        let alloc = self.alloc[idx]
            .take()
            .expect("invariant: an ExecutionEnd event fires exactly once per live run id");
        self.free.push(run_id);
        self.live -= 1;
        FinishedRun {
            job_slot: self.job_slot[idx] as usize,
            start: self.start[idx],
            expected_end: self.expected_end[idx],
            alloc,
            flags: self.flags[idx],
        }
    }

    /// The live allocation under `run_id` — the one column the EASY
    /// eligible-count closure reads.
    #[inline]
    pub(crate) fn alloc(&self, run_id: u64) -> &Allocation {
        self.alloc[run_id as usize]
            .as_ref()
            .expect("invariant: release entries track live runs")
    }

    /// Currently running executions.
    #[inline]
    pub(crate) fn live(&self) -> usize {
        self.live
    }

    /// `(expected_end, alloc)` over live executions — the debug
    /// cross-check's rebuild-and-sort input.
    #[cfg(debug_assertions)]
    pub(crate) fn iter_live(&self) -> impl Iterator<Item = (Time, &Allocation)> {
        self.expected_end
            .iter()
            .zip(&self.alloc)
            .filter_map(|(&end, alloc)| alloc.as_ref().map(|a| (end, a)))
    }

    /// Drop every entry but keep the columns' capacity (arena reuse).
    pub(crate) fn clear(&mut self) {
        self.job_slot.clear();
        self.start.clear();
        self.expected_end.clear();
        self.alloc.clear();
        self.flags.clear();
        self.free.clear();
        self.live = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resmatch_workload::job::JobBuilder;

    const UNRESOLVED: u32 = u32::MAX;

    #[test]
    fn job_slots_recycle_and_reset_progress() {
        let mut s = JobStore::default();
        let a = s.insert(JobBuilder::new(1).build(), UNRESOLVED);
        let b = s.insert(JobBuilder::new(2).build(), UNRESOLVED);
        assert_ne!(a, b);
        s.add_failure(a, 12.5);
        s.set_scope(a, 7);
        assert_eq!(s.failed_execs(a), 1);
        assert_eq!(s.wasted(a), 12.5);
        s.release(a);
        let c = s.insert(JobBuilder::new(3).build(), UNRESOLVED);
        assert_eq!(c, a, "released slot is reused");
        assert_eq!(s.job(c).id.0, 3);
        assert_eq!(s.failed_execs(c), 0);
        assert_eq!(s.wasted(c), 0.0);
        assert_eq!(s.scope(c), UNRESOLVED);
        assert_eq!(s.job(b).id.0, 2, "other slots untouched");
    }

    #[test]
    fn run_ids_peek_then_insert_then_recycle() {
        use resmatch_cluster::{ClusterBuilder, Demand, MatchPolicy};
        let mut cluster = ClusterBuilder::new().pool(8, 32 * 1024).build();
        let mut grab = |n: u32| {
            cluster
                .try_allocate(n, &Demand::memory(1024), MatchPolicy::BestFit, 0)
                .expect("8-node pool holds these")
        };
        let mut t = RunTable::default();
        assert_eq!(t.peek_id(), 0);
        // A refused allocation peeks without consuming the id.
        assert_eq!(t.peek_id(), 0);
        let a0 = grab(2);
        t.insert(
            0,
            5,
            Time::from_secs(1),
            Time::from_secs(10),
            a0,
            run_flags::LOWERED,
        );
        assert_eq!(t.peek_id(), 1);
        t.insert(1, 6, Time::from_secs(2), Time::from_secs(20), grab(3), 0);
        assert_eq!(t.live(), 2);
        assert_eq!(t.alloc(1).per_pool(), &[(0, 3)]);
        let done = t.take(0);
        assert_eq!(done.job_slot, 5);
        assert_eq!(done.expected_end, Time::from_secs(10));
        assert_ne!(done.flags & run_flags::LOWERED, 0);
        assert_eq!(t.live(), 1);
        assert_eq!(t.peek_id(), 0, "finished id is recycled next");
        t.insert(0, 7, Time::from_secs(3), Time::from_secs(30), grab(1), 0);
        t.clear();
        assert_eq!(t.live(), 0);
        assert_eq!(t.peek_id(), 0);
    }
}
