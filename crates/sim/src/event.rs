//! The event queue: a deterministic min-heap of timestamped events.
//!
//! Ties are broken by insertion sequence so two runs of the same simulation
//! pop events in exactly the same order — the foundation of the workspace's
//! bit-reproducibility guarantee.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use resmatch_workload::Time;

/// What can happen in the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A job (by index into the workload) is submitted.
    Arrival {
        /// Index into the workload's job slice.
        job: usize,
    },
    /// A running execution ends.
    ExecutionEnd {
        /// Identifier handed out when the execution started.
        run_id: u64,
        /// True when the execution completed successfully; false when it
        /// died from under-provisioned resources (or injected faults).
        success: bool,
    },
    /// A scheduled node join/leave takes effect (dynamic cluster
    /// membership).
    Churn {
        /// Index into the simulation's churn schedule.
        index: usize,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Entry {
    time: Time,
    seq: u64,
    event: Event,
}

// Reversed ordering: BinaryHeap is a max-heap, we need earliest-first.
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Deterministic future-event list.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Entry>,
    next_seq: u64,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Schedule `event` at `time`. Events at equal times pop in insertion
    /// order.
    pub fn push(&mut self, time: Time, event: Event) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<(Time, Event)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// Time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events remain.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Time::from_secs(30), Event::Arrival { job: 3 });
        q.push(Time::from_secs(10), Event::Arrival { job: 1 });
        q.push(Time::from_secs(20), Event::Arrival { job: 2 });
        let order: Vec<usize> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::Arrival { job } => job,
                _ => panic!("unexpected event"),
            })
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = Time::from_secs(5);
        for job in 0..100 {
            q.push(t, Event::Arrival { job });
        }
        for expect in 0..100 {
            let (time, e) = q.pop().unwrap();
            assert_eq!(time, t);
            assert_eq!(e, Event::Arrival { job: expect });
        }
    }

    #[test]
    fn interleaved_push_pop() {
        let mut q = EventQueue::new();
        q.push(Time::from_secs(10), Event::Arrival { job: 1 });
        q.push(
            Time::from_secs(5),
            Event::ExecutionEnd {
                run_id: 7,
                success: true,
            },
        );
        let (t, e) = q.pop().unwrap();
        assert_eq!(t, Time::from_secs(5));
        assert!(matches!(e, Event::ExecutionEnd { run_id: 7, .. }));
        q.push(Time::from_secs(1), Event::Arrival { job: 9 });
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, Time::from_secs(1));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop().unwrap();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = EventQueue::new();
        q.push(Time::from_secs(2), Event::Arrival { job: 0 });
        assert_eq!(q.peek_time(), Some(Time::from_secs(2)));
        assert_eq!(q.len(), 1);
    }
}
