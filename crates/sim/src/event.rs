//! The event queue: a deterministic min-heap of timestamped events.
//!
//! Ties are broken by insertion sequence so two runs of the same simulation
//! pop events in exactly the same order — the foundation of the workspace's
//! bit-reproducibility guarantee.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use resmatch_workload::Time;

/// What can happen in the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A job (by index into the workload) is submitted.
    Arrival {
        /// Index into the workload's job slice.
        job: usize,
    },
    /// A running execution ends.
    ExecutionEnd {
        /// Identifier handed out when the execution started.
        run_id: u64,
        /// True when the execution completed successfully; false when it
        /// died from under-provisioned resources (or injected faults).
        success: bool,
    },
    /// A scheduled node join/leave takes effect (dynamic cluster
    /// membership).
    Churn {
        /// Index into the simulation's churn schedule.
        index: usize,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Entry {
    time: Time,
    seq: u64,
    event: Event,
}

/// Heap key for a runtime event: ordering fields only, with the payload
/// parked in the slab. Sift operations move 20 bytes instead of the whole
/// entry, and popped payload slots are recycled through the free list
/// instead of growing a `Vec` per event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct HeapKey {
    time: Time,
    seq: u64,
    slot: u32,
}

// Reversed ordering: BinaryHeap is a max-heap, we need earliest-first.
// `slot` carries no ordering (seqs are unique).
impl Ord for HeapKey {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for HeapKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Deterministic future-event list.
///
/// Two storage tiers with one logical ordering, `(time, seq)`:
///
/// - a *seeded* prefix of statically known events (trace arrivals, churn),
///   sorted once and consumed front-to-back by cursor;
/// - a binary heap for events scheduled while running (execution ends),
///   which therefore only ever holds the in-flight executions — tens of
///   entries instead of the whole trace. The heap orders slim
///   16-byte `(time, seq, slot)` keys; event payloads live in a slab
///   (`pool`) whose slots are recycled through a free list, so
///   steady-state pushes allocate nothing.
///
/// Seeded entries are assigned seqs before any runtime push, so a
/// time-tie between the tiers always resolves to the seeded entry —
/// exactly the order a single heap seeded by up-front pushes would yield.
///
/// `clear` drops every pending event but keeps all four buffers'
/// capacity, so a [`crate::engine::SimArena`] can reuse one queue across
/// an entire sweep without reallocating.
#[derive(Debug, Default)]
pub struct EventQueue {
    seeded: Vec<Entry>,
    cursor: usize,
    heap: BinaryHeap<HeapKey>,
    /// Runtime event payloads, indexed by [`HeapKey::slot`].
    pool: Vec<Event>,
    /// Recycled `pool` slots.
    free: Vec<u32>,
    next_seq: u64,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// An empty queue with room for `capacity` runtime events before the
    /// heap (and its payload slab) reallocates.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            seeded: Vec::new(),
            cursor: 0,
            heap: BinaryHeap::with_capacity(capacity),
            pool: Vec::with_capacity(capacity),
            free: Vec::new(),
            next_seq: 0,
        }
    }

    /// A queue pre-loaded with the statically known schedule. Events keep
    /// their slice order as the tie-breaker (the sort is stable), so this
    /// pops identically to pushing them one by one into an empty queue —
    /// without ever paying heap maintenance for them.
    pub fn from_schedule(schedule: Vec<(Time, Event)>) -> Self {
        let mut q = EventQueue::new();
        q.seed(schedule);
        q
    }

    /// Load the statically known schedule into the seeded tier: stable
    /// sort by time, then seqs assigned in sorted order, all below any
    /// future runtime seq. Must run on an empty queue (enforced in debug).
    pub(crate) fn seed(&mut self, schedule: impl IntoIterator<Item = (Time, Event)>) {
        debug_assert!(self.is_empty(), "seed on a non-empty queue");
        self.seeded
            .extend(schedule.into_iter().map(|(time, event)| Entry {
                time,
                seq: 0,
                event,
            }));
        self.seeded.sort_by_key(|e| e.time);
        for (seq, e) in self.seeded.iter_mut().enumerate() {
            e.seq = seq as u64;
        }
        self.next_seq = self.seeded.len() as u64;
    }

    /// Drop all pending events but keep every buffer's capacity — the
    /// arena-reuse reset between runs.
    pub(crate) fn clear(&mut self) {
        self.seeded.clear();
        self.cursor = 0;
        self.heap.clear();
        self.pool.clear();
        self.free.clear();
        self.next_seq = 0;
    }

    /// Schedule `event` at `time`. Events at equal times pop in insertion
    /// order.
    pub fn push(&mut self, time: Time, event: Event) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = if let Some(slot) = self.free.pop() {
            self.pool[slot as usize] = event;
            slot
        } else {
            self.pool.push(event);
            (self.pool.len() - 1) as u32
        };
        self.heap.push(HeapKey { time, seq, slot });
    }

    /// Earliest entry across both tiers: `(from_seeded, time, event)`.
    fn front(&self) -> Option<(bool, Time, Event)> {
        let seeded = self.seeded.get(self.cursor);
        let heap = self.heap.peek();
        let from_seeded = match (seeded, heap) {
            (Some(s), Some(h)) => (s.time, s.seq) <= (h.time, h.seq),
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => return None,
        };
        if from_seeded {
            let s = seeded.expect("invariant: seeded tier chosen above");
            Some((true, s.time, s.event))
        } else {
            let h = heap.expect("invariant: heap tier chosen above");
            Some((false, h.time, self.pool[h.slot as usize]))
        }
    }

    /// Remove and return the earliest event.
    ///
    /// # Panics
    ///
    /// Panics only on a broken internal invariant (the chosen tier's
    /// entry vanishing between peek and pop).
    pub fn pop(&mut self) -> Option<(Time, Event)> {
        let (from_seeded, time, event) = self.front()?;
        if from_seeded {
            self.cursor += 1;
        } else {
            let key = self
                .heap
                .pop()
                .expect("invariant: front() saw a heap entry");
            self.free.push(key.slot);
        }
        Some((time, event))
    }

    /// Time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<Time> {
        self.front().map(|(_, t, _)| t)
    }

    /// The earliest event and its time without removing it.
    pub fn peek(&self) -> Option<(Time, Event)> {
        self.front().map(|(_, t, e)| (t, e))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.seeded.len() - self.cursor + self.heap.len()
    }

    /// True when no events remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Time::from_secs(30), Event::Arrival { job: 3 });
        q.push(Time::from_secs(10), Event::Arrival { job: 1 });
        q.push(Time::from_secs(20), Event::Arrival { job: 2 });
        let order: Vec<usize> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::Arrival { job } => job,
                _ => panic!("unexpected event"),
            })
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = Time::from_secs(5);
        for job in 0..100 {
            q.push(t, Event::Arrival { job });
        }
        for expect in 0..100 {
            let (time, e) = q.pop().unwrap();
            assert_eq!(time, t);
            assert_eq!(e, Event::Arrival { job: expect });
        }
    }

    #[test]
    fn interleaved_push_pop() {
        let mut q = EventQueue::new();
        q.push(Time::from_secs(10), Event::Arrival { job: 1 });
        q.push(
            Time::from_secs(5),
            Event::ExecutionEnd {
                run_id: 7,
                success: true,
            },
        );
        let (t, e) = q.pop().unwrap();
        assert_eq!(t, Time::from_secs(5));
        assert!(matches!(e, Event::ExecutionEnd { run_id: 7, .. }));
        q.push(Time::from_secs(1), Event::Arrival { job: 9 });
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, Time::from_secs(1));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop().unwrap();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }

    #[test]
    fn seeded_schedule_pops_like_upfront_pushes() {
        // The same events, seeded vs pushed, must pop identically —
        // including the stable tie order for equal times and the
        // seeded-before-runtime rule when a push lands on a seeded time.
        let t = Time::from_secs(5);
        let schedule = vec![
            (Time::from_secs(9), Event::Arrival { job: 0 }),
            (t, Event::Arrival { job: 1 }),
            (t, Event::Arrival { job: 2 }),
            (Time::from_secs(1), Event::Arrival { job: 3 }),
        ];
        let mut seeded = EventQueue::from_schedule(schedule.clone());
        let mut pushed = EventQueue::new();
        for &(time, event) in &schedule {
            pushed.push(time, event);
        }
        seeded.push(
            t,
            Event::ExecutionEnd {
                run_id: 0,
                success: true,
            },
        );
        pushed.push(
            t,
            Event::ExecutionEnd {
                run_id: 0,
                success: true,
            },
        );
        assert_eq!(seeded.len(), 5);
        loop {
            let (a, b) = (seeded.pop(), pushed.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = EventQueue::with_capacity(4);
        assert_eq!(q.peek(), None);
        q.push(Time::from_secs(2), Event::Arrival { job: 0 });
        assert_eq!(q.peek_time(), Some(Time::from_secs(2)));
        assert_eq!(
            q.peek(),
            Some((Time::from_secs(2), Event::Arrival { job: 0 }))
        );
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn slab_slots_recycle_without_growth() {
        let mut q = EventQueue::new();
        // Interleave pushes and pops so the free list gets exercised: the
        // slab never needs more slots than the peak in-flight count.
        for round in 0..50u64 {
            q.push(
                Time::from_secs(round),
                Event::ExecutionEnd {
                    run_id: round,
                    success: true,
                },
            );
            q.push(
                Time::from_secs(round),
                Event::ExecutionEnd {
                    run_id: round + 1000,
                    success: false,
                },
            );
            let (_, e) = q.pop().unwrap();
            assert_eq!(
                e,
                Event::ExecutionEnd {
                    run_id: round,
                    success: true
                }
            );
            let (_, e) = q.pop().unwrap();
            assert_eq!(
                e,
                Event::ExecutionEnd {
                    run_id: round + 1000,
                    success: false
                }
            );
        }
        assert!(
            q.pool.len() <= 2,
            "slab grew past peak concurrency: {}",
            q.pool.len()
        );
        assert!(q.is_empty());
    }

    #[test]
    fn clear_resets_but_keeps_capacity() {
        let mut q = EventQueue::from_schedule(vec![
            (Time::from_secs(1), Event::Arrival { job: 0 }),
            (Time::from_secs(2), Event::Arrival { job: 1 }),
        ]);
        q.push(
            Time::from_secs(3),
            Event::ExecutionEnd {
                run_id: 0,
                success: true,
            },
        );
        let cap = q.pool.capacity();
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
        assert_eq!(q.pool.capacity(), cap);
        // A cleared queue behaves like a fresh one, seqs included.
        q.seed(vec![(Time::from_secs(7), Event::Arrival { job: 9 })]);
        q.push(
            Time::from_secs(7),
            Event::ExecutionEnd {
                run_id: 1,
                success: true,
            },
        );
        // Seeded entry wins the time tie, as in a fresh queue.
        assert_eq!(
            q.pop(),
            Some((Time::from_secs(7), Event::Arrival { job: 9 }))
        );
    }
}
