//! The event queue: a deterministic min-heap of timestamped events.
//!
//! Ties are broken by insertion sequence so two runs of the same simulation
//! pop events in exactly the same order — the foundation of the workspace's
//! bit-reproducibility guarantee.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use resmatch_workload::Time;

/// What can happen in the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A job (by index into the workload) is submitted.
    Arrival {
        /// Index into the workload's job slice.
        job: usize,
    },
    /// A running execution ends.
    ExecutionEnd {
        /// Identifier handed out when the execution started.
        run_id: u64,
        /// True when the execution completed successfully; false when it
        /// died from under-provisioned resources (or injected faults).
        success: bool,
    },
    /// A scheduled node join/leave takes effect (dynamic cluster
    /// membership).
    Churn {
        /// Index into the simulation's churn schedule.
        index: usize,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Entry {
    time: Time,
    seq: u64,
    event: Event,
}

// Reversed ordering: BinaryHeap is a max-heap, we need earliest-first.
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Deterministic future-event list.
///
/// Two storage tiers with one logical ordering, `(time, seq)`:
///
/// - a *seeded* prefix of statically known events (trace arrivals, churn),
///   sorted once and consumed front-to-back by cursor;
/// - a binary heap for events scheduled while running (execution ends),
///   which therefore only ever holds the in-flight executions — tens of
///   entries instead of the whole trace.
///
/// Seeded entries are assigned seqs before any runtime push, so a
/// time-tie between the tiers always resolves to the seeded entry —
/// exactly the order a single heap seeded by up-front pushes would yield.
#[derive(Debug, Default)]
pub struct EventQueue {
    seeded: Vec<Entry>,
    cursor: usize,
    heap: BinaryHeap<Entry>,
    next_seq: u64,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// An empty queue with room for `capacity` runtime events before the
    /// heap reallocates.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            seeded: Vec::new(),
            cursor: 0,
            heap: BinaryHeap::with_capacity(capacity),
            next_seq: 0,
        }
    }

    /// A queue pre-loaded with the statically known schedule. Events keep
    /// their slice order as the tie-breaker (the sort below is stable), so
    /// this pops identically to pushing them one by one into an empty
    /// queue — without ever paying heap maintenance for them.
    pub fn from_schedule(mut schedule: Vec<(Time, Event)>) -> Self {
        schedule.sort_by_key(|&(time, _)| time);
        let seeded: Vec<Entry> = schedule
            .into_iter()
            .enumerate()
            .map(|(seq, (time, event))| Entry {
                time,
                seq: seq as u64,
                event,
            })
            .collect();
        let next_seq = seeded.len() as u64;
        EventQueue {
            seeded,
            cursor: 0,
            heap: BinaryHeap::new(),
            next_seq,
        }
    }

    /// Schedule `event` at `time`. Events at equal times pop in insertion
    /// order.
    pub fn push(&mut self, time: Time, event: Event) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Earliest entry across both tiers: `(from_seeded, entry)`.
    fn front(&self) -> Option<(bool, &Entry)> {
        match (self.seeded.get(self.cursor), self.heap.peek()) {
            (Some(s), Some(h)) => {
                if (s.time, s.seq) <= (h.time, h.seq) {
                    Some((true, s))
                } else {
                    Some((false, h))
                }
            }
            (Some(s), None) => Some((true, s)),
            (None, Some(h)) => Some((false, h)),
            (None, None) => None,
        }
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<(Time, Event)> {
        match self.front()? {
            (true, s) => {
                let out = (s.time, s.event);
                self.cursor += 1;
                Some(out)
            }
            (false, _) => self.heap.pop().map(|e| (e.time, e.event)),
        }
    }

    /// Time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<Time> {
        self.front().map(|(_, e)| e.time)
    }

    /// The earliest event and its time without removing it.
    pub fn peek(&self) -> Option<(Time, Event)> {
        self.front().map(|(_, e)| (e.time, e.event))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.seeded.len() - self.cursor + self.heap.len()
    }

    /// True when no events remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Time::from_secs(30), Event::Arrival { job: 3 });
        q.push(Time::from_secs(10), Event::Arrival { job: 1 });
        q.push(Time::from_secs(20), Event::Arrival { job: 2 });
        let order: Vec<usize> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::Arrival { job } => job,
                _ => panic!("unexpected event"),
            })
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = Time::from_secs(5);
        for job in 0..100 {
            q.push(t, Event::Arrival { job });
        }
        for expect in 0..100 {
            let (time, e) = q.pop().unwrap();
            assert_eq!(time, t);
            assert_eq!(e, Event::Arrival { job: expect });
        }
    }

    #[test]
    fn interleaved_push_pop() {
        let mut q = EventQueue::new();
        q.push(Time::from_secs(10), Event::Arrival { job: 1 });
        q.push(
            Time::from_secs(5),
            Event::ExecutionEnd {
                run_id: 7,
                success: true,
            },
        );
        let (t, e) = q.pop().unwrap();
        assert_eq!(t, Time::from_secs(5));
        assert!(matches!(e, Event::ExecutionEnd { run_id: 7, .. }));
        q.push(Time::from_secs(1), Event::Arrival { job: 9 });
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, Time::from_secs(1));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop().unwrap();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }

    #[test]
    fn seeded_schedule_pops_like_upfront_pushes() {
        // The same events, seeded vs pushed, must pop identically —
        // including the stable tie order for equal times and the
        // seeded-before-runtime rule when a push lands on a seeded time.
        let t = Time::from_secs(5);
        let schedule = vec![
            (Time::from_secs(9), Event::Arrival { job: 0 }),
            (t, Event::Arrival { job: 1 }),
            (t, Event::Arrival { job: 2 }),
            (Time::from_secs(1), Event::Arrival { job: 3 }),
        ];
        let mut seeded = EventQueue::from_schedule(schedule.clone());
        let mut pushed = EventQueue::new();
        for &(time, event) in &schedule {
            pushed.push(time, event);
        }
        seeded.push(
            t,
            Event::ExecutionEnd {
                run_id: 0,
                success: true,
            },
        );
        pushed.push(
            t,
            Event::ExecutionEnd {
                run_id: 0,
                success: true,
            },
        );
        assert_eq!(seeded.len(), 5);
        loop {
            let (a, b) = (seeded.pop(), pushed.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = EventQueue::with_capacity(4);
        assert_eq!(q.peek(), None);
        q.push(Time::from_secs(2), Event::Arrival { job: 0 });
        assert_eq!(q.peek_time(), Some(Time::from_secs(2)));
        assert_eq!(
            q.peek(),
            Some((Time::from_secs(2), Event::Arrival { job: 0 }))
        );
        assert_eq!(q.len(), 1);
    }
}
