//! The discrete-event simulation engine.
//!
//! Faithfully implements the paper's §3.1 environment:
//!
//! - jobs arrive by trace submit time and pass through the estimator before
//!   resource matching (Figure 2's pipeline);
//! - space sharing, no preemption;
//! - a job whose allocation cannot actually hold it (actual usage exceeds
//!   the weakest allocated node, or an exercised package is missing) "fails
//!   after a random time, drawn uniformly between zero and the execution
//!   run-time of that job" and "returns to the head of the queue";
//! - failed work is wasted: utilization counts goodput only.
//!
//! Engine-level semantics the paper leaves implicit:
//!
//! - estimates are *refreshed* while a job queues: a queued entry whose
//!   estimate may have been invalidated is re-estimated just before
//!   allocation — matching a live scheduler, where matching always consults
//!   the estimator's current state. Invalidation is scoped (see
//!   [`EstimateScope`]): feedback for one similarity group never forces
//!   re-estimation of jobs in other groups, membership churn invalidates
//!   everything, and context-dependent estimators keep the historical
//!   refresh-on-any-feedback rule;
//! - after `max_estimation_attempts` failed executions the engine bypasses
//!   the estimator and submits the raw user request, bounding retry storms
//!   for pathological groups;
//! - jobs whose full request can never be satisfied by the cluster are
//!   dropped up front (the paper removes the six 1024-node CM5 jobs for the
//!   same reason).

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::mem;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use resmatch_cluster::{AllocationSpare, Cluster, Demand, MatchPolicy, PoolMatcher};
use resmatch_core::similarity::FnvBuildHasher;
use resmatch_core::traits::{requested_demand, used_demand};
use resmatch_core::{EstimateContext, EstimateScope, Feedback, ResourceEstimator};
use resmatch_workload::{Job, Time, Workload};

use crate::event::{Event, EventQueue};
use crate::metrics::{JobRecord, RunCounters, SimResult};
use crate::observer::{MultiObserver, SimObserver};
use crate::queue::{JobQueue, Queued};
use crate::release::ReleaseTable;
#[cfg(debug_assertions)]
use crate::scheduler::shadow_time;
use crate::scheduler::SchedulingPolicy;
use crate::spec::EstimatorSpec;
use crate::store::{run_flags, JobStore, RunTable};
use crate::tracelog::TraceLog;

/// Which feedback the cluster infrastructure can deliver (§2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FeedbackMode {
    /// Success/failure bit only — "supported by every cluster and
    /// scheduling system"; the paper's simulations assume this.
    #[default]
    Implicit,
    /// Success plus measured peak usage — requires monitoring
    /// infrastructure.
    Explicit,
}

/// Engine configuration.
///
/// Marked `#[non_exhaustive]`: construct it with [`SimConfig::default`]
/// and the chained `with_*` setters so future fields are not semver
/// breaks.
///
/// ```
/// use resmatch_sim::prelude::*;
/// let cfg = SimConfig::default()
///     .with_scheduling(SchedulingPolicy::EasyBackfill)
///     .with_seed(7);
/// ```
#[non_exhaustive]
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Queue discipline (paper: FCFS).
    pub scheduling: SchedulingPolicy,
    /// Pool ordering for allocation (paper scenario implies best-fit).
    pub match_policy: MatchPolicy,
    /// Feedback the estimator receives.
    pub feedback: FeedbackMode,
    /// Failed executions after which the engine bypasses the estimator and
    /// submits the raw request.
    pub max_estimation_attempts: u32,
    /// Probability that a correctly provisioned execution fails anyway
    /// (faulty program / faulty machine — the §2.1 false-positive hazard).
    pub false_positive_rate: f64,
    /// Seed for failure-time draws and fault injection.
    pub seed: u64,
    /// Whether to retain per-job [`JobRecord`]s in the result. Disabling
    /// this caps memory at queue-depth-plus-concurrency regardless of
    /// trace length (the 10-million-job stress mode); record-derived
    /// metrics ([`SimResult::mean_wait_s`] and friends) then report zero,
    /// while counters, goodput, and time-weighted statistics stay exact.
    pub retain_records: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            scheduling: SchedulingPolicy::Fcfs,
            match_policy: MatchPolicy::BestFit,
            feedback: FeedbackMode::Implicit,
            max_estimation_attempts: 3,
            false_positive_rate: 0.0,
            seed: 0x00C0_FFEE,
            retain_records: true,
        }
    }
}

impl SimConfig {
    /// Set the queue discipline.
    pub fn with_scheduling(mut self, scheduling: SchedulingPolicy) -> Self {
        self.scheduling = scheduling;
        self
    }

    /// Set the pool-ordering policy for allocation.
    pub fn with_match_policy(mut self, match_policy: MatchPolicy) -> Self {
        self.match_policy = match_policy;
        self
    }

    /// Set the feedback the estimator receives.
    pub fn with_feedback(mut self, feedback: FeedbackMode) -> Self {
        self.feedback = feedback;
        self
    }

    /// Set the failed-execution count after which the engine bypasses the
    /// estimator.
    pub fn with_max_estimation_attempts(mut self, attempts: u32) -> Self {
        self.max_estimation_attempts = attempts;
        self
    }

    /// Set the injected false-positive failure probability.
    pub fn with_false_positive_rate(mut self, rate: f64) -> Self {
        self.false_positive_rate = rate;
        self
    }

    /// Set the RNG seed for failure-time draws and fault injection.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set whether per-job records are retained (see
    /// [`SimConfig::retain_records`]).
    pub fn with_retain_records(mut self, retain: bool) -> Self {
        self.retain_records = retain;
        self
    }
}

/// Encoded [`EstimateScope`] resolution (see [`Queued::scope_slot`] and
/// the [`JobStore`] scope column): values below [`SCOPE_GLOBAL`] are dense
/// group slots into [`RunState::group_epoch_by_slot`]; the top values
/// encode the scalar scopes. `estimate_scope` is contractually a pure
/// function of the job, so one resolution per job is the only resolution —
/// caching it removes a similarity-key hash from every refresh and every
/// feedback delivery.
const SCOPE_UNRESOLVED: u32 = u32::MAX;
/// Encoded [`EstimateScope::Static`].
const SCOPE_STATIC: u32 = u32::MAX - 1;
/// Encoded [`EstimateScope::Global`].
const SCOPE_GLOBAL: u32 = u32::MAX - 2;

/// Memoized EASY reservation: the head's shadow crossing plus how far the
/// backfill scan got, valid exactly while nothing that could change either
/// has happened.
///
/// The key is `(head job, head demand, running generation, structural
/// epoch)`: free-node counts and the release set move only with starts,
/// completions, and churn (the two generations), and every in-queue
/// estimate refresh rides a feedback epoch that moves only with
/// completions — so a hit also proves no queued entry below `scanned`
/// needs re-estimation, and the pass may resume scanning at new arrivals.
struct ShadowCache {
    job: usize,
    demand: Demand,
    running_gen: u64,
    structural: u64,
    /// Uncapped crossing time (`shadow = crossing.max(now)` at use, since
    /// a conservative release time may already lie in the past); `None`
    /// when even a drained cluster cannot satisfy the head.
    crossing: Option<Time>,
    /// Queue entries below this index are proven unstartable under this
    /// key: their estimates are fresh, their conservative completions
    /// still overrun the shadow (`now` only grows the overrun), and the
    /// cluster they failed to allocate on is unchanged.
    scanned: usize,
}

/// Reusable simulation buffers: every growable structure one run needs,
/// cleared — capacity intact — rather than freed between runs.
///
/// A sweep worker holds one arena and threads it through every point via
/// [`Simulation::run_with_arena`]; after the first point warms the
/// buffers, subsequent runs do zero steady-state allocation in the engine.
/// A fresh arena is exactly what [`Simulation::run`] creates internally,
/// so results are byte-identical with and without reuse.
#[derive(Debug, Default)]
pub struct SimArena {
    queue: JobQueue,
    events: EventQueue,
    store: JobStore,
    runs: RunTable,
    release_table: ReleaseTable,
    free_cache: Vec<(Demand, u32)>,
    free_cache_sig: Vec<(u64, u32)>,
    group_slots: HashMap<u64, u32, FnvBuildHasher>,
    group_epoch_by_slot: Vec<u64>,
    sjf_heap: BinaryHeap<Reverse<(Time, i64)>>,
    pool_busy_time: Vec<f64>,
    pool_busy: Vec<u32>,
    /// Retired-allocation buffers carried *across* cluster instances:
    /// sweep points clone a fresh cluster each, but the buffer pool is
    /// content-free (capacity only), so handing it to the next point's
    /// cluster is invisible to results and zeroes its warm-up
    /// allocations.
    alloc_spare: AllocationSpare,
}

/// Mutable state of one simulation run.
struct RunState {
    /// Struct-of-arrays wait queue (see [`crate::queue`]): tombstoning
    /// under FCFS/EASY, compacting under SJF.
    queue: JobQueue,
    /// Struct-of-arrays store of *active* jobs (queued or running), slots
    /// recycled on completion — per-job memory no longer scales with the
    /// trace. [`Queued::job`] and the run table hold its slot ids.
    store: JobStore,
    /// Struct-of-arrays slab of executions; `ExecutionEnd.run_id` indexes
    /// it. Entries are taken when they end, ids recycled.
    runs: RunTable,
    events: EventQueue,
    records: Vec<JobRecord>,
    rng: StdRng,
    /// Bumped on membership churn. Capacity changes can re-rank rungs and
    /// candidate counts, so every queued estimate predating it re-admits.
    structural_epoch: u64,
    /// Bumped on every estimator feedback.
    feedback_epoch: u64,
    /// Estimator group id → dense slot into [`RunState::group_epoch_by_slot`].
    /// Consulted only on admission and feedback delivery; the per-candidate
    /// staleness check indexes the dense vector through
    /// [`Queued::group_slot`] instead of hashing.
    group_slots: HashMap<u64, u32, FnvBuildHasher>,
    /// Feedback epoch at which each similarity group (by dense slot) last
    /// received feedback — the group-scoped invalidation index. Entries
    /// whose scope is [`EstimateScope::Group`] re-estimate only when
    /// *their* group moved past their stamp; zero means "never moved"
    /// (real epochs start at one).
    group_epoch_by_slot: Vec<u64>,
    /// Bumped whenever the running set changes (start or completion) —
    /// with the structural epoch, the freshness key for [`ShadowCache`].
    running_gen: u64,
    /// Bumped by every event that could turn a refused allocation into a
    /// granted one or stale a fresh estimate: execution ends (they release
    /// nodes, and all feedback — global and group — happens there) and
    /// membership churn. While it stands still, a queued entry's recorded
    /// refusal ([`Queued::failed_alloc_stamp`]) repeats identically, so
    /// retries are skipped without touching the cluster.
    retry_epoch: u64,
    /// Eligible-free counts per distinct demand, memoized under the
    /// current retry epoch. Starts only shrink the free set within an
    /// epoch (releases and churn bump it), so each cached count is an
    /// *upper bound* on the live one: an entry demanding more nodes than
    /// the bound is provably refused at `try_allocate`'s availability
    /// gate, with nothing else to observe — estimates are rung-quantized,
    /// so a handful of entries absorbs most of a saturated queue's
    /// allocation attempts.
    free_cache: Vec<(Demand, u32)>,
    /// Signature-keyed twin of `free_cache`, used when the matcher
    /// vouches for its demand signatures (`demand_signature()` returns
    /// `Some`): one cached bound then serves every demand in a verdict
    /// class, and the probe compares one integer instead of a `Demand`.
    free_cache_sig: Vec<(u64, u32)>,
    /// Retry epoch the `free_cache`/`free_cache_sig` memos belong to; a
    /// mismatch clears them.
    free_cache_stamp: u64,
    /// Running jobs sorted by conservative completion time (EASY only).
    release_table: ReleaseTable,
    /// Last computed EASY reservation, keyed by head and generations.
    shadow_cache: Option<ShadowCache>,
    /// The head demand the release table's eligible counts were computed
    /// against, and the epoch stamped on them. When the matcher vouches
    /// for its demand signatures, the signature stands in for the demand
    /// — equal signatures guarantee equal per-pool allocator verdicts, so
    /// the epoch (and the counts behind it) holds across raw demand
    /// changes within one verdict class.
    last_shadow_demand: Option<Demand>,
    last_shadow_sig: Option<u64>,
    shadow_demand_epoch: u64,
    /// SJF's index heap: `(requested_runtime, queue rank)`, so the next
    /// candidate is an O(1) peek instead of an O(queue) scan. Mirrors the
    /// queue exactly — entries are pushed on admission and popped only
    /// when their job starts.
    sjf_heap: BinaryHeap<Reverse<(Time, i64)>>,
    /// Next queue rank for `push_back` (ascending from zero).
    next_back_seq: i64,
    /// Next queue rank for `push_front` (descending from -1).
    next_front_seq: i64,
    total_executions: u64,
    failed_executions: u64,
    events_processed: u64,
    goodput: f64,
    wasted: f64,
    last_completion: Time,
    /// Jobs rejected up front or abandoned after failing at their full
    /// request (the trace's request did not cover its usage).
    dropped_jobs: usize,
    /// Attached observer, when any. `None` costs one branch per callback
    /// site — the unobserved hot path stays unobserved.
    obs: Option<Box<dyn SimObserver>>,
    /// Deterministic event counters, tracked unconditionally.
    counters: RunCounters,
    /// Time-weighted accumulators for queue statistics.
    last_event_time: Time,
    queue_len_time: f64,
    busy_nodes_time: f64,
    weighted_span_s: f64,
    /// Busy-node-seconds per pool (construction order).
    pool_busy_time: Vec<f64>,
    /// Busy nodes per pool right now, maintained from each allocation's
    /// per-pool counts at start and release. Mirrors
    /// `Cluster::pool_busy_count` (churn moves nodes between free and
    /// offline only, never busy) without a per-pool cluster query on every
    /// event.
    pool_busy: Vec<u32>,
}

/// A scheduled change in cluster membership — the paper's §1.1 setting
/// where "machines can dynamically join and leave the systems at any time".
///
/// Negative `delta` takes up to that many *free* nodes of the given memory
/// capacity offline — the engine never revokes a running job, so if fewer
/// are free, fewer leave. Positive `delta` brings previously departed
/// nodes back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChurnEvent {
    /// When the change takes effect.
    pub time: Time,
    /// Memory capacity (KB) identifying the pool.
    pub mem_kb: u64,
    /// Nodes leaving (< 0) or rejoining (> 0).
    pub delta: i64,
}

/// A configured simulation, ready to run a workload.
///
/// Prefer [`Simulation::builder`] for new code; the positional
/// constructors remain for the common no-observer case.
pub struct Simulation {
    cfg: SimConfig,
    cluster: Cluster,
    estimator: Box<dyn ResourceEstimator>,
    churn: Vec<ChurnEvent>,
    observer: Option<Box<dyn SimObserver>>,
    /// Matchmaking layer, when active (see [`Simulation::with_matchmaking`]).
    /// `None` — the default — is the legacy capacity-only allocation path,
    /// byte-identical to every simulation ever run without it.
    matchmaking: Option<Box<dyn PoolMatcher>>,
}

impl Simulation {
    /// Start a builder: typed setters for configuration, cluster,
    /// estimator, churn schedule, and observers.
    pub fn builder() -> crate::build::SimulationBuilder {
        crate::build::SimulationBuilder::new()
    }

    /// Build from an estimator spec (instantiated against this cluster's
    /// capacity ladder).
    pub fn new(cfg: SimConfig, cluster: Cluster, spec: EstimatorSpec) -> Self {
        let estimator = spec.build(&cluster.memory_ladder());
        Simulation::from_parts(cfg, cluster, estimator)
    }

    /// Assemble from already-resolved parts — the builder's entry point.
    pub(crate) fn from_parts(
        cfg: SimConfig,
        cluster: Cluster,
        estimator: Box<dyn ResourceEstimator>,
    ) -> Self {
        Simulation {
            cfg,
            cluster,
            estimator,
            churn: Vec::new(),
            observer: None,
            matchmaking: None,
        }
    }

    /// Build with a caller-provided estimator (custom implementations).
    #[deprecated(
        since = "0.3.0",
        note = "use Simulation::builder().boxed_estimator(...) — named estimators should go \
                through EstimatorSpec instead"
    )]
    pub fn with_estimator(
        cfg: SimConfig,
        cluster: Cluster,
        estimator: Box<dyn ResourceEstimator>,
    ) -> Self {
        Simulation::from_parts(cfg, cluster, estimator)
    }

    /// Attach an observer to the run. Attaching more than once stacks the
    /// observers into a [`MultiObserver`], called in attachment order.
    pub fn with_observer(mut self, observer: Box<dyn SimObserver>) -> Self {
        self.observer = Some(match self.observer.take() {
            None => observer,
            Some(existing) => Box::new(MultiObserver::pair(existing, observer)),
        });
        self
    }

    /// Attach a matchmaking layer: every allocation decision — the up-front
    /// feasibility gate, availability bounds, EASY reservation arithmetic,
    /// and the allocation itself — then consults `matcher` in addition to
    /// raw capacity, and the matcher's rank expression (when
    /// [`PoolMatcher::is_ranked`]) replaces [`MatchPolicy`]'s pool order.
    ///
    /// The matcher's verdicts must be pure in `(prepared demand, pool ad)`:
    /// the engine memoizes eligible-node counts across a retry epoch and
    /// replays refusals, exactly as it does for capacity. A matcher whose
    /// answers drift between identical calls breaks those proofs.
    ///
    /// Disk usage accounting rides along: with a matcher attached, a
    /// running job whose `used_disk_kb` exceeds the weakest allocated
    /// node's scratch disk fails mid-run like a memory overrun, and
    /// explicit feedback carries the granted disk floor. Without one,
    /// granted disk stays zero — the historical behaviour.
    pub fn with_matchmaking(mut self, matcher: Box<dyn PoolMatcher>) -> Self {
        self.matchmaking = Some(matcher);
        self
    }

    /// Attach a dynamic-membership schedule. A job that can never run on
    /// the nodes remaining online is eventually counted as dropped rather
    /// than waited on forever.
    pub fn with_churn(mut self, churn: Vec<ChurnEvent>) -> Self {
        self.churn = churn;
        self
    }

    /// Run the workload to completion and report metrics.
    pub fn run(self, workload: &Workload) -> SimResult {
        let mut arena = SimArena::default();
        self.run_with_arena(workload, &mut arena)
    }

    /// Like [`Simulation::run`], but reusing `arena`'s buffers instead of
    /// allocating fresh ones — the steady-state mode for sweeps. Results
    /// are byte-identical to [`Simulation::run`].
    pub fn run_with_arena(self, workload: &Workload, arena: &mut SimArena) -> SimResult {
        self.run_core(workload.jobs().iter().cloned(), arena)
    }

    /// Run a streamed job sequence without materializing it: jobs are
    /// pulled from the iterator one at a time, in nondecreasing submit
    /// order (checked in debug builds). With
    /// [`SimConfig::retain_records`] disabled, memory stays bounded by
    /// queue depth plus running concurrency regardless of stream length.
    ///
    /// For a workload already in memory this is byte-identical to
    /// [`Simulation::run`]; the observer's `on_run_start` job count comes
    /// from the iterator's size hint and may be approximate for opaque
    /// streams.
    pub fn run_stream<I>(self, jobs: I) -> SimResult
    where
        I: IntoIterator<Item = Job>,
    {
        let mut arena = SimArena::default();
        self.run_core(jobs.into_iter(), &mut arena)
    }

    /// Streamed run ([`Simulation::run_stream`]) reusing `arena`'s
    /// buffers.
    pub fn run_stream_with_arena<I>(self, jobs: I, arena: &mut SimArena) -> SimResult
    where
        I: IntoIterator<Item = Job>,
    {
        self.run_core(jobs.into_iter(), arena)
    }

    /// Pull the next arrival that survives the up-front feasibility gate,
    /// counting the ones that do not ("jobs whose full request can never
    /// be satisfied are dropped up front"). The first job's submit —
    /// dropped or not — is captured as the run's `first_submit`.
    fn next_surviving<I: Iterator<Item = Job>>(
        feed: &mut I,
        gate: &Cluster,
        mut matcher: Option<&mut (dyn PoolMatcher + 'static)>,
        first_submit: &mut Option<Time>,
        dropped: &mut usize,
    ) -> Option<Job> {
        loop {
            let job = feed.next()?;
            if first_submit.is_none() {
                *first_submit = Some(job.submit);
            }
            let request = requested_demand(&job);
            let eligible = match matcher.as_deref_mut() {
                Some(m) => {
                    m.prepare(&request);
                    gate.nodes_satisfying_matched(&request, m)
                }
                None => gate.nodes_satisfying(&request),
            };
            if eligible < job.nodes {
                *dropped += 1;
                continue;
            }
            return Some(job);
        }
    }

    /// Advance the time-weighted statistics clock to `now`: the state
    /// observed since the previous event held for `dt`.
    fn advance_clock(&self, state: &mut RunState, now: Time) {
        let dt = now.saturating_sub(state.last_event_time).as_secs_f64();
        if dt > 0.0 {
            // Same-timestamp bursts contribute nothing; skipping them
            // outright is bit-exact (`x += v * 0.0` is the identity for
            // the finite values accumulated here) and avoids the
            // per-pool walk on every event of a burst.
            state.last_event_time = now;
            state.queue_len_time += state.queue.len() as f64 * dt;
            state.busy_nodes_time += self.cluster.busy_nodes() as f64 * dt;
            state.weighted_span_s += dt;
            for (i, (slot, &busy)) in state
                .pool_busy_time
                .iter_mut()
                .zip(&state.pool_busy)
                .enumerate()
            {
                debug_assert_eq!(busy, self.cluster.pool_busy_count(i));
                // Zero terms are skipped: the accumulator is a sum of
                // non-negative products, so `+ 0.0` is the bit-exact
                // identity here.
                if busy > 0 {
                    *slot += busy as f64 * dt;
                }
            }
        }
    }

    /// The event loop shared by every `run*` entry point. Arrivals come
    /// straight from `feed` — never materialized, never heaped — merged
    /// against the event queue on `(time, tie)` where the feed always wins
    /// time ties: arrivals historically carried the lowest seeded
    /// sequence numbers, so this reproduces the seeded order exactly.
    fn run_core<I: Iterator<Item = Job>>(mut self, mut feed: I, arena: &mut SimArena) -> SimResult {
        let total_nodes = self.cluster.total_nodes();
        let expected_jobs = {
            let (lower, upper) = feed.size_hint();
            upper.unwrap_or(lower)
        };
        let sjf = matches!(self.cfg.scheduling, SchedulingPolicy::Sjf);

        let mut state = RunState {
            queue: {
                let mut q = mem::take(&mut arena.queue);
                // SJF locates entries by rank search and needs every slot
                // live; FCFS/EASY take O(1) tombstone removal instead.
                // (`reset` also clears, keeping capacity.)
                q.reset(sjf);
                q
            },
            store: {
                let mut s = mem::take(&mut arena.store);
                s.clear();
                s
            },
            runs: {
                let mut r = mem::take(&mut arena.runs);
                r.clear();
                r
            },
            events: {
                let mut e = mem::take(&mut arena.events);
                e.clear();
                e
            },
            records: if self.cfg.retain_records {
                Vec::with_capacity(expected_jobs)
            } else {
                // lint: allow(hot-path-alloc): empty Vec, once per run, no heap touch
                Vec::new()
            },
            rng: StdRng::seed_from_u64(self.cfg.seed),
            structural_epoch: 0,
            feedback_epoch: 0,
            group_slots: {
                let mut m = mem::take(&mut arena.group_slots);
                m.clear();
                m
            },
            group_epoch_by_slot: {
                let mut v = mem::take(&mut arena.group_epoch_by_slot);
                v.clear();
                v
            },
            running_gen: 0,
            retry_epoch: 0,
            free_cache: {
                let mut v = mem::take(&mut arena.free_cache);
                v.clear();
                v
            },
            free_cache_sig: {
                let mut v = mem::take(&mut arena.free_cache_sig);
                v.clear();
                v
            },
            free_cache_stamp: 0,
            release_table: {
                let mut t = mem::take(&mut arena.release_table);
                t.clear();
                t
            },
            shadow_cache: None,
            last_shadow_demand: None,
            last_shadow_sig: None,
            shadow_demand_epoch: 0,
            sjf_heap: {
                let mut h = mem::take(&mut arena.sjf_heap);
                h.clear();
                h
            },
            next_back_seq: 0,
            next_front_seq: -1,
            total_executions: 0,
            failed_executions: 0,
            events_processed: 0,
            goodput: 0.0,
            wasted: 0.0,
            last_completion: Time::ZERO,
            dropped_jobs: 0,
            obs: self.observer.take(),
            counters: RunCounters::default(),
            last_event_time: Time::ZERO,
            queue_len_time: 0.0,
            busy_nodes_time: 0.0,
            weighted_span_s: 0.0,
            pool_busy_time: {
                let mut v = mem::take(&mut arena.pool_busy_time);
                v.clear();
                v.resize(self.cluster.num_pools(), 0.0);
                v
            },
            pool_busy: {
                let mut v = mem::take(&mut arena.pool_busy);
                v.clear();
                v.resize(self.cluster.num_pools(), 0);
                v
            },
        };
        // Only the churn schedule is statically known now; it seeds the
        // queue's sorted cursor-consumed prefix, so its entries beat
        // same-time execution ends — as their low seeded seqs always did.
        state.events.seed(
            self.churn
                .iter()
                .enumerate()
                .map(|(index, c)| (c.time, Event::Churn { index })),
        );

        // The feasibility gate judges against original cluster membership
        // (the historical schedule-build-time semantics). Allocations
        // never take nodes offline, so without churn the live cluster *is*
        // pristine and the clone is skipped.
        // lint: allow(hot-path-alloc): once-per-run setup clone, outside the event loop
        let pristine = (!self.churn.is_empty()).then(|| self.cluster.clone());
        // Installed after the pristine clone so the clone stays minimal;
        // the spare pool is capacity-only and cannot affect outcomes.
        self.cluster
            .install_spare(mem::take(&mut arena.alloc_spare));
        let mut first_submit_seen = None;
        let mut pending = Self::next_surviving(
            &mut feed,
            pristine.as_ref().unwrap_or(&self.cluster),
            self.matchmaking.as_deref_mut(),
            &mut first_submit_seen,
            &mut state.dropped_jobs,
        );
        let first_submit = first_submit_seen.unwrap_or(Time::ZERO);
        state.last_event_time = first_submit;

        if let Some(obs) = state.obs.as_deref_mut() {
            obs.on_run_start(expected_jobs);
        }

        // True when the queue head was left *blocked by a full scheduling
        // pass* and nothing that could unblock it has happened since. Only
        // arrivals can intervene without running `schedule` (see the gate
        // below), and an arrival changes no epoch and frees no node, so the
        // proof stays valid until the next pass resets the flag.
        let mut head_blocked = false;
        loop {
            // Merge the feed against the event queue. `pending` is always
            // the next *surviving* arrival, so a feed-vs-event time tie
            // resolves exactly as the old seeded order did: the arrival
            // first.
            let take_feed = match (&pending, state.events.peek_time()) {
                (Some(j), Some(t)) => j.submit <= t,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            let now;
            if take_feed {
                let job = pending
                    .take()
                    .expect("invariant: take_feed saw a pending job");
                now = job.submit;
                debug_assert!(
                    now >= state.last_event_time,
                    "job feed must be nondecreasing in submit time"
                );
                state.events_processed += 1;
                self.advance_clock(&mut state, now);
                state.counters.arrivals += 1;
                state.counters.admissions += 1;
                let job_id = job.id;
                if let Some(obs) = state.obs.as_deref_mut() {
                    obs.on_arrival(now, job_id);
                }
                let queue_len = state.queue.len();
                let slot = state.store.insert(job, SCOPE_UNRESOLVED);
                let queued = self.admit(&mut state, slot, 0, queue_len);
                if self.cfg.max_estimation_attempts == 0 {
                    // Degenerate configuration: estimation disabled
                    // outright, so even first submissions bypass.
                    state.counters.estimator_bypassed += 1;
                    if let Some(obs) = state.obs.as_deref_mut() {
                        obs.on_estimator_bypassed(now, job_id, 0);
                    }
                }
                if let Some(obs) = state.obs.as_deref_mut() {
                    obs.on_admitted(now, job_id, queued.demand.mem_kb, 0);
                }
                self.push_back_queued(&mut state, queued);
                if queue_len == 0 {
                    // The new arrival became the head; nothing has
                    // proven it blocked yet.
                    head_blocked = false;
                }
                pending = Self::next_surviving(
                    &mut feed,
                    pristine.as_ref().unwrap_or(&self.cluster),
                    self.matchmaking.as_deref_mut(),
                    &mut first_submit_seen,
                    &mut state.dropped_jobs,
                );
                // Arrivals sharing a timestamp share one scheduling
                // pass. Under FCFS and EASY an arrival appends at the
                // tail, so running `schedule` once after the last of the
                // burst starts exactly the jobs the per-arrival passes
                // would have (nothing is released in between, and the
                // scan order over earlier entries is unchanged). SJF is
                // excluded: a shorter later arrival can overtake the
                // queue, so each arrival must get its own pass.
                if !sjf {
                    if let Some(next) = &pending {
                        if next.submit == now {
                            continue;
                        }
                    }
                }
                // FCFS only starts the head. If a pass already proved
                // the head blocked and no completion/churn (the only
                // events that free nodes or move epochs) has happened
                // since, the pass this arrival would trigger is a
                // by-construction no-op: the head is not stale (a pass
                // refreshes before trying) and `try_allocate` sees the
                // identical cluster, so it fails identically. EASY is
                // excluded (the arrival itself may backfill), as is SJF
                // (the arrival may become the new minimum).
                if head_blocked && matches!(self.cfg.scheduling, SchedulingPolicy::Fcfs) {
                    continue;
                }
            } else {
                let (t, event) = state
                    .events
                    .pop()
                    .expect("invariant: the merge saw a pending event");
                now = t;
                state.events_processed += 1;
                self.advance_clock(&mut state, now);
                match event {
                    Event::ExecutionEnd { run_id, success } => {
                        self.finish_execution(&mut state, now, run_id, success);
                    }
                    Event::Churn { index } => {
                        let ev = self.churn[index];
                        let applied = if ev.delta < 0 {
                            -(self.cluster.take_offline(ev.mem_kb, (-ev.delta) as u32) as i64)
                        } else {
                            self.cluster.bring_online(ev.mem_kb, ev.delta as u32) as i64
                        };
                        state.counters.churn_events += 1;
                        if let Some(obs) = state.obs.as_deref_mut() {
                            obs.on_churn(now, applied);
                        }
                        // Capacity changed: queued estimates may now round
                        // to different rungs, so force re-admission.
                        state.structural_epoch += 1;
                        state.retry_epoch += 1;
                    }
                    Event::Arrival { .. } => {
                        // Arrivals come from the feed; nothing enqueues
                        // this variant anymore.
                        debug_assert!(false, "arrival events are never enqueued");
                    }
                }
            }
            self.schedule(&mut state, now);
            // A pass ends either with an empty queue or because the head
            // refused to start — in the latter case the head is now both
            // fresh and proven blocked.
            head_blocked = !state.queue.is_empty();
        }

        // With dynamic membership a queued job can outlive the nodes it
        // needs; whatever is still queued after the last event can never
        // start and is accounted as dropped.
        state.dropped_jobs += state.queue.len();
        debug_assert!(
            !self.churn.is_empty() || state.queue.is_empty(),
            "without churn no job may starve"
        );
        debug_assert_eq!(state.runs.live(), 0);
        debug_assert_eq!(
            self.cluster.free_nodes() + self.cluster.offline_nodes(),
            total_nodes
        );

        let RunState {
            queue,
            store,
            runs,
            events,
            records,
            group_slots,
            group_epoch_by_slot,
            free_cache,
            free_cache_sig,
            release_table,
            sjf_heap,
            pool_busy_time,
            pool_busy,
            mut obs,
            counters,
            total_executions,
            failed_executions,
            events_processed,
            goodput,
            wasted,
            last_completion,
            dropped_jobs,
            weighted_span_s,
            queue_len_time,
            busy_nodes_time,
            ..
        } = state;

        let mut result = SimResult {
            estimator: self.estimator.name().to_string(),
            completed_jobs: counters.completed as usize,
            dropped_jobs,
            total_executions,
            failed_executions,
            events_processed,
            total_nodes,
            first_submit,
            last_completion,
            goodput_node_seconds: goodput,
            wasted_node_seconds: wasted,
            records,
            trace_log: TraceLog::default(),
            counters,
            mean_queue_length: if weighted_span_s > 0.0 {
                queue_len_time / weighted_span_s
            } else {
                0.0
            },
            mean_busy_nodes: if weighted_span_s > 0.0 {
                busy_nodes_time / weighted_span_s
            } else {
                0.0
            },
            pool_stats: self
                .cluster
                .pool_occupancy()
                .iter()
                .zip(&pool_busy_time)
                .map(
                    |(&(mem_kb, nodes, _), &busy_time)| crate::metrics::PoolStats {
                        mem_kb,
                        nodes,
                        mean_busy_fraction: if weighted_span_s > 0.0 && nodes > 0 {
                            busy_time / (weighted_span_s * nodes as f64)
                        } else {
                            0.0
                        },
                    },
                )
                .collect(),
        };
        // Hand every buffer back to the arena for the next run.
        arena.queue = queue;
        arena.events = events;
        arena.store = store;
        arena.runs = runs;
        arena.release_table = release_table;
        arena.free_cache = free_cache;
        arena.free_cache_sig = free_cache_sig;
        arena.group_slots = group_slots;
        arena.group_epoch_by_slot = group_epoch_by_slot;
        arena.sjf_heap = sjf_heap;
        arena.pool_busy_time = pool_busy_time;
        arena.pool_busy = pool_busy;
        arena.alloc_spare = self.cluster.take_spare();
        // Observers get the last word: TraceLogObserver deposits its log
        // into `result.trace_log` here.
        if let Some(obs) = obs.as_deref_mut() {
            obs.on_run_end(&mut result);
        }
        result
    }

    /// Handle an execution's end: release nodes, deliver feedback, record or
    /// requeue.
    fn finish_execution(&mut self, state: &mut RunState, now: Time, run_id: u64, success: bool) {
        let run = state.runs.take(run_id);
        state.running_gen += 1;
        state.retry_epoch += 1;
        if matches!(self.cfg.scheduling, SchedulingPolicy::EasyBackfill) {
            state.release_table.remove(run.expected_end, run_id);
        }
        let slot = run.job_slot;
        // All-inline fields: the copy frees `state` for the mutations
        // below while the job is still consulted.
        let job = state.store.job(slot).clone();
        let resource_failure = run.flags & run_flags::RESOURCE_FAILURE != 0;
        let min_mem = self.cluster.allocation_min_mem(&run.alloc);
        // Granted disk is a matchmaking-mode concept: the legacy path
        // reports zero, keeping feedback bytes identical for every
        // pre-matchmaking configuration.
        let min_disk = if self.matchmaking.is_some() {
            self.cluster.allocation_min_disk(&run.alloc)
        } else {
            0
        };
        let granted = Demand {
            mem_kb: min_mem,
            disk_kb: min_disk,
            packages: self.cluster.allocation_packages(&run.alloc) & job.requested_packages,
        };
        for &(pi, n) in run.alloc.per_pool() {
            state.pool_busy[pi as usize] -= n;
        }
        self.cluster.release(run.alloc);

        let ctx = EstimateContext {
            queue_len: state.queue.len(),
            free_fraction: self.cluster.free_nodes() as f64 / self.cluster.total_nodes() as f64,
        };
        let fb = match (self.cfg.feedback, success) {
            (FeedbackMode::Implicit, s) => Feedback::Implicit { success: s },
            (FeedbackMode::Explicit, true) => Feedback::explicit(true, used_demand(&job)),
            (FeedbackMode::Explicit, false) => {
                // A failed run's measurement is truncated at the
                // allocation's ceiling. Disk is ceilinged only under
                // matchmaking, where the allocation has a disk floor at
                // all (legacy granted disk is a flat zero).
                let mut used = used_demand(&job);
                used.mem_kb = used.mem_kb.min(min_mem);
                if self.matchmaking.is_some() {
                    used.disk_kb = used.disk_kb.min(min_disk);
                }
                Feedback::explicit(false, used)
            }
        };
        self.estimator.feedback(&job, &granted, &fb, &ctx);
        state.feedback_epoch += 1;
        // Group-scoped invalidation: record which group just moved, so only
        // queued entries of that group (plus Global-scope entries) refresh.
        let scope_slot = self.scope_slot_of(state, slot);
        if scope_slot < SCOPE_GLOBAL {
            state.group_epoch_by_slot[scope_slot as usize] = state.feedback_epoch;
        }
        if let Some(obs) = state.obs.as_deref_mut() {
            obs.on_feedback(now, job.id, success);
            if success {
                obs.on_completed(now, job.id);
            } else {
                obs.on_failed(now, job.id, resource_failure);
            }
        }

        if success {
            state.counters.completed += 1;
            state.goodput += job.nodes as f64 * job.runtime.as_secs_f64();
            state.last_completion = state.last_completion.max(now);
            if self.cfg.retain_records {
                state.records.push(JobRecord {
                    id: job.id,
                    submit: job.submit,
                    final_start: run.start,
                    completion: now,
                    runtime: job.runtime,
                    nodes: job.nodes,
                    failed_executions: state.store.failed_execs(slot),
                    lowered: run.flags & run_flags::LOWERED != 0,
                    benefited: run.flags & run_flags::BENEFITED != 0,
                    wasted_node_seconds: state.store.wasted(slot),
                });
            }
            state.store.release(slot);
        } else {
            state.counters.failed += 1;
            state.failed_executions += 1;
            let burn = job.nodes as f64 * now.saturating_sub(run.start).as_secs_f64();
            state.wasted += burn;
            state.store.add_failure(slot, burn);
            if resource_failure && run.flags & run_flags::AT_REQUEST != 0 {
                // Even the full user request cannot hold this job — the
                // trace violates the paper's request-covers-usage
                // assumption. Retrying can never succeed; abandon it.
                state.dropped_jobs += 1;
                state.store.release(slot);
            } else {
                // "Once it fails, the job returns to the head of the
                // queue" — with a fresh (post-feedback) estimate.
                let attempts = state.store.failed_execs(slot);
                state.counters.admissions += 1;
                state.counters.requeued += 1;
                let queue_len = state.queue.len();
                let queued = self.admit(state, slot, attempts, queue_len);
                if attempts >= self.cfg.max_estimation_attempts {
                    state.counters.estimator_bypassed += 1;
                    if let Some(obs) = state.obs.as_deref_mut() {
                        obs.on_estimator_bypassed(now, job.id, attempts);
                    }
                }
                if let Some(obs) = state.obs.as_deref_mut() {
                    obs.on_admitted(now, job.id, queued.demand.mem_kb, attempts);
                }
                self.push_front_queued(state, queued);
            }
        }
    }

    /// Dense epoch slot for an estimator group id, allocated on first
    /// sight. Runs only on a job's first scope resolution; the hot
    /// staleness checks index [`RunState::group_epoch_by_slot`] directly.
    fn group_slot(state: &mut RunState, g: u64) -> u32 {
        let next = state.group_epoch_by_slot.len() as u32;
        let slot = *state.group_slots.entry(g).or_insert(next);
        if slot == next {
            state.group_epoch_by_slot.push(0);
        }
        slot
    }

    /// The estimator's scope for a job, encoded per the `SCOPE_*`
    /// constants and memoized in the [`JobStore`] scope column. The first
    /// call per job pays the similarity-key hash; every later admission,
    /// refresh, and feedback delivery is a vector read. Memoization is
    /// sound because the trait requires `estimate_scope` to be a pure
    /// function of the job, and the slot persists across the job's
    /// retries.
    fn scope_slot_of(&self, state: &mut RunState, slot: usize) -> u32 {
        let cached = state.store.scope(slot);
        if cached != SCOPE_UNRESOLVED {
            return cached;
        }
        let resolved = match self.estimator.estimate_scope(state.store.job(slot)) {
            EstimateScope::Group(g) => Self::group_slot(state, g),
            EstimateScope::Static => SCOPE_STATIC,
            EstimateScope::Global => SCOPE_GLOBAL,
        };
        state.store.set_scope(slot, resolved);
        resolved
    }

    /// Build the queue entry for a (re)submission: run the estimator (or
    /// bypass it after too many failures) and precompute bookkeeping flags.
    ///
    /// `queue_len` is passed explicitly because the callers' conventions
    /// differ: a refresh excludes the entry being refreshed, while a
    /// (re)admission counts every entry already waiting.
    fn admit(
        &mut self,
        state: &mut RunState,
        slot: usize,
        attempts: u32,
        queue_len: usize,
    ) -> Queued {
        // All-inline fields: the copy frees `state` for `scope_slot_of`.
        let job = state.store.job(slot).clone();
        let request = requested_demand(&job);
        let (demand, scope_slot) = if attempts >= self.cfg.max_estimation_attempts {
            // Bypassing the estimator: the raw request depends on nothing
            // feedback can change, so only churn can stale this entry.
            (request, SCOPE_STATIC)
        } else {
            let ctx = EstimateContext {
                queue_len,
                free_fraction: self.cluster.free_nodes() as f64 / self.cluster.total_nodes() as f64,
            };
            let d = self.estimator.estimate(&job, &ctx);
            debug_assert!(
                d.within(&request),
                "estimator {} produced a demand above the request",
                self.estimator.name()
            );
            (d, self.scope_slot_of(state, slot))
        };
        let lowered = demand != request && demand.within(&request);
        let benefited = match self.matchmaking.as_deref_mut() {
            Some(m) => {
                m.prepare(&demand);
                let eligible = self.cluster.nodes_satisfying_matched(&demand, m);
                m.prepare(&request);
                eligible > self.cluster.nodes_satisfying_matched(&request, m)
            }
            None => {
                self.cluster.nodes_satisfying(&demand) > self.cluster.nodes_satisfying(&request)
            }
        };
        Queued {
            job: slot,
            attempts,
            demand,
            structural_stamp: state.structural_epoch,
            feedback_stamp: state.feedback_epoch,
            lowered,
            benefited,
            // Assigned at the push site (front vs back rank); an in-place
            // refresh keeps the entry's existing rank.
            seq: 0,
            requested_runtime: job.requested_runtime,
            failed_alloc_stamp: u64::MAX,
            nodes: job.nodes,
            scope_slot,
        }
    }

    /// Enqueue at the back with the next ascending rank, mirroring into
    /// the SJF heap when that policy is active.
    fn push_back_queued(&self, state: &mut RunState, mut queued: Queued) {
        queued.seq = state.next_back_seq;
        state.next_back_seq += 1;
        if matches!(self.cfg.scheduling, SchedulingPolicy::Sjf) {
            state
                .sjf_heap
                .push(Reverse((queued.requested_runtime, queued.seq)));
        }
        state.queue.push_back(queued);
    }

    /// Enqueue at the front ("returns to the head of the queue") with the
    /// next descending rank, mirroring into the SJF heap when active.
    fn push_front_queued(&self, state: &mut RunState, mut queued: Queued) {
        queued.seq = state.next_front_seq;
        state.next_front_seq -= 1;
        if matches!(self.cfg.scheduling, SchedulingPolicy::Sjf) {
            state
                .sjf_heap
                .push(Reverse((queued.requested_runtime, queued.seq)));
        }
        state.queue.push_front(queued);
    }

    /// Whether feedback or churn since admission invalidates the estimate
    /// of the queued entry — the engine's historical refresh rule.
    fn estimate_stale(q: &Queued, state: &RunState) -> bool {
        q.structural_stamp != state.structural_epoch
            || match q.scope_slot {
                // Raw requests and history-independent estimates never
                // go stale from feedback.
                SCOPE_STATIC => false,
                // Context-dependent estimators: any feedback may matter —
                // exactly the engine's historical refresh-always rule.
                SCOPE_GLOBAL => q.feedback_stamp != state.feedback_epoch,
                // Only feedback *for this group* can move the estimate;
                // the slot was resolved at admission, so this is a vector
                // read (zero = the group never received feedback).
                slot => state.group_epoch_by_slot[slot as usize] > q.feedback_stamp,
            }
    }

    /// Upper bound on the eligible-free node count for `demand` under the
    /// current retry epoch, memoized per distinct demand. Within one epoch
    /// the free set only shrinks (starts allocate; releases and churn bump
    /// the epoch), so `nodes > bound` proves `try_allocate` would refuse
    /// at its availability gate — its only refusal condition — without
    /// calling it.
    fn free_bound(
        cluster: &Cluster,
        state: &mut RunState,
        demand: &Demand,
        matcher: Option<&mut (dyn PoolMatcher + 'static)>,
    ) -> u32 {
        if state.free_cache_stamp != state.retry_epoch {
            state.free_cache.clear();
            state.free_cache_sig.clear();
            state.free_cache_stamp = state.retry_epoch;
        }
        // Matcher verdicts are pure in (demand, pool ad), so a matched
        // count is memoizable under exactly the same epoch reasoning as
        // the capacity-only one. A vouched signature collapses the memo
        // further: one entry per verdict class instead of per demand.
        match matcher {
            Some(m) => {
                m.prepare(demand);
                if let Some(s) = m.demand_signature() {
                    if let Some(&(_, f)) = state.free_cache_sig.iter().find(|(k, _)| *k == s) {
                        return f;
                    }
                    let f = cluster.free_nodes_satisfying_matched(demand, m);
                    state.free_cache_sig.push((s, f));
                    f
                } else {
                    if let Some(&(_, f)) = state.free_cache.iter().find(|(d, _)| d == demand) {
                        return f;
                    }
                    let f = cluster.free_nodes_satisfying_matched(demand, m);
                    state.free_cache.push((*demand, f));
                    f
                }
            }
            None => {
                if let Some(&(_, f)) = state.free_cache.iter().find(|(d, _)| d == demand) {
                    return f;
                }
                let f = cluster.free_nodes_satisfying(demand);
                state.free_cache.push((*demand, f));
                f
            }
        }
    }

    /// Try to start the queued entry at `idx`, refreshing its estimate if
    /// feedback has arrived since it was admitted. Removes it from the
    /// queue and returns true on success.
    fn try_start_at(&mut self, state: &mut RunState, idx: usize, now: Time) -> bool {
        // One copy of the entry decides everything the refusal fast
        // paths need — the columns are gathered once, not per check.
        let q = state.queue.get(idx);
        // A refusal recorded under the current retry epoch is still
        // exact: nothing since has released nodes, changed membership,
        // or moved any feedback epoch (all of those bump
        // `retry_epoch`), so the entry is provably still fresh and
        // `try_allocate` — side-effect free on refusal — would refuse
        // the identical request again.
        if q.failed_alloc_stamp == state.retry_epoch {
            debug_assert!(
                !Self::estimate_stale(&q, state),
                "an unchanged retry epoch must imply a fresh estimate"
            );
            return false;
        }
        let (demand, job_nodes) = if Self::estimate_stale(&q, state) {
            // The entry being refreshed sits in the queue itself; exclude
            // it so re-estimation sees the same context convention as
            // admission (`queue_len` counts *other* waiting jobs — see
            // `EstimateContext::queue_len`).
            let queue_len = state.queue.len() - 1;
            let mut fresh = self.admit(state, q.job, q.attempts, queue_len);
            // A refresh changes the estimate, never the queue position.
            fresh.seq = q.seq;
            let refreshed = (fresh.demand, fresh.nodes);
            state.queue.set(idx, fresh);
            refreshed
        } else {
            (q.demand, q.nodes)
        };
        // The entry is fresh past this point (refreshed above if needed),
        // so a skipped allocation attempt skips nothing else: demanding
        // more nodes than the epoch's free bound is exactly the refusal
        // `try_allocate`'s availability gate would produce, side-effect
        // free.
        if job_nodes
            > Self::free_bound(
                &self.cluster,
                state,
                &demand,
                self.matchmaking.as_deref_mut(),
            )
        {
            state.queue.set_failed_stamp(idx, state.retry_epoch);
            return false;
        }
        // Reuse a finished slab slot when one is free. Peeked, not popped:
        // a refused allocation must leave the free list untouched.
        let run_id = state.runs.peek_id();
        let alloc = match self.matchmaking.as_deref_mut() {
            Some(m) => {
                state.counters.match_attempts += 1;
                if let Some(obs) = state.obs.as_deref_mut() {
                    obs.on_match_attempt(now, state.store.job(q.job).id, job_nodes);
                }
                m.prepare(&demand);
                self.cluster.try_allocate_matched(
                    job_nodes,
                    &demand,
                    self.cfg.match_policy,
                    run_id,
                    m,
                )
            }
            None => self
                .cluster
                .try_allocate(job_nodes, &demand, self.cfg.match_policy, run_id),
        };
        let Some(alloc) = alloc else {
            // The bound over-approximated (an earlier start in this epoch
            // shrank the free set); tighten it to the live count and
            // record the refusal — until the next execution end or churn
            // event it would repeat identically, so passes skip it.
            let live = match self.matchmaking.as_deref_mut() {
                Some(m) => {
                    state.counters.match_refusals += 1;
                    if let Some(obs) = state.obs.as_deref_mut() {
                        obs.on_match_refused(now, state.store.job(q.job).id);
                    }
                    // Still prepared for `demand` from the refused attempt.
                    self.cluster.free_nodes_satisfying_matched(&demand, m)
                }
                None => self.cluster.free_nodes_satisfying(&demand),
            };
            // Tighten whichever memo row served this demand (the matcher,
            // when present, is still prepared for it).
            match self
                .matchmaking
                .as_deref()
                .and_then(|m| m.demand_signature())
            {
                Some(s) => {
                    if let Some(slot) = state.free_cache_sig.iter_mut().find(|(k, _)| *k == s) {
                        slot.1 = live;
                    }
                }
                None => {
                    if let Some(slot) = state.free_cache.iter_mut().find(|(d, _)| *d == demand) {
                        slot.1 = live;
                    }
                }
            }
            state.queue.set_failed_stamp(idx, state.retry_epoch);
            return false;
        };
        for &(pi, n) in alloc.per_pool() {
            state.pool_busy[pi as usize] += n;
        }
        let queued = state.queue.get(idx);
        let slot = queued.job;
        state.total_executions += 1;
        state.counters.started += 1;

        // Does the allocation actually hold the job? Whole nodes are
        // granted, so the job may consume up to the weakest node's capacity
        // regardless of the (smaller) estimated demand.
        let min_mem = self.cluster.allocation_min_mem(&alloc);
        let packages = self.cluster.allocation_packages(&alloc);
        // Disk overruns only exist in matchmaking mode; the legacy bound
        // is infinite so the check below is vacuously true there.
        let min_disk = if self.matchmaking.is_some() {
            self.cluster.allocation_min_disk(&alloc)
        } else {
            u64::MAX
        };
        let (job_id, runtime, at_request, resources_ok) = {
            let job = state.store.job(slot);
            (
                job.id,
                job.runtime,
                queued.demand == requested_demand(job),
                job.used_mem_kb <= min_mem
                    && job.used_disk_kb <= min_disk
                    && (job.used_packages & !packages) == 0,
            )
        };
        let injected_fault = self.cfg.false_positive_rate > 0.0
            && state.rng.random::<f64>() < self.cfg.false_positive_rate;
        let success = resources_ok && !injected_fault;

        let end = if success {
            now + runtime
        } else {
            // Uniform failure point within the run time.
            now + Time::from_millis((state.rng.random::<f64>() * runtime.as_millis() as f64) as u64)
        };
        state
            .events
            .push(end, Event::ExecutionEnd { run_id, success });
        if let Some(obs) = state.obs.as_deref_mut() {
            obs.on_started(now, job_id, min_mem, queued.nodes);
        }
        let queued = state.queue.remove(idx);
        let mut flags = 0u8;
        if queued.lowered {
            flags |= run_flags::LOWERED;
        }
        if queued.benefited {
            flags |= run_flags::BENEFITED;
        }
        if at_request {
            flags |= run_flags::AT_REQUEST;
        }
        if !resources_ok {
            flags |= run_flags::RESOURCE_FAILURE;
        }
        let expected_end = now + queued.requested_runtime;
        if matches!(self.cfg.scheduling, SchedulingPolicy::EasyBackfill) {
            state.release_table.insert(expected_end, run_id);
        }
        state
            .runs
            .insert(run_id, slot, now, expected_end, alloc, flags);
        state.running_gen += 1;
        true
    }

    /// One scheduling pass under the configured policy.
    fn schedule(&mut self, state: &mut RunState, now: Time) {
        match self.cfg.scheduling {
            SchedulingPolicy::Fcfs => {
                while !state.queue.is_empty() {
                    let head = state.queue.head_idx();
                    if !self.try_start_at(state, head, now) {
                        break;
                    }
                }
            }
            SchedulingPolicy::Sjf => {
                // The heap mirrors the queue: its minimum (requested
                // runtime, then queue rank) is exactly the entry the old
                // O(queue) first-minimum scan selected, found by an O(1)
                // peek plus an O(log queue) rank search.
                while let Some(&Reverse((_, seq))) = state.sjf_heap.peek() {
                    let idx = state.queue.index_of_seq(seq);
                    debug_assert_eq!(
                        Some(idx),
                        state.queue.debug_first_min_runtime_idx(),
                        "heap selection must match the first-minimum scan"
                    );
                    if !self.try_start_at(state, idx, now) {
                        break;
                    }
                    state.sjf_heap.pop();
                }
            }
            SchedulingPolicy::EasyBackfill => loop {
                // Phase 0: when a previous pass proved this exact head
                // blocked against this exact cluster state, skip the
                // retry and the reservation arithmetic — only entries the
                // proof has not reached yet (new arrivals) need scanning.
                // A hit also proves no skipped entry needs re-estimation:
                // feedback epochs move only with completions, which bump
                // the running generation.
                let cached = match (&state.shadow_cache, state.queue.front()) {
                    (Some(c), Some(ref h))
                        if c.job == h.job
                            && c.demand == h.demand
                            && c.running_gen == state.running_gen
                            && c.structural == state.structural_epoch =>
                    {
                        Some((c.crossing, c.scanned))
                    }
                    _ => None,
                };
                let (shadow, scan_from) = if let Some((crossing, scanned)) = cached {
                    let Some(t_cross) = crossing else {
                        // Still short of a drained cluster; only a
                        // completion or churn can change that, and either
                        // would have missed the cache.
                        break;
                    };
                    (t_cross.max(now), scanned)
                } else {
                    // Phase 1: drain the head while it fits.
                    let mut head_started = true;
                    while head_started && !state.queue.is_empty() {
                        let head = state.queue.head_idx();
                        head_started = self.try_start_at(state, head, now);
                    }
                    if state.queue.len() < 2 {
                        break;
                    }
                    // Phase 2: reservation for the blocked head, from the
                    // incrementally maintained release table. Eligible
                    // counts are cached per head demand: the epoch only
                    // moves when the demand itself does.
                    let Some(head) = state.queue.front() else {
                        break;
                    };
                    let head_demand = head.demand;
                    let head_job = head.job;
                    let head_nodes = head.nodes;
                    // Prepare the matcher once for the head and thread its
                    // interned demand signature into the eligible-count
                    // epoch. A vouched signature (`Some`) guarantees the
                    // full allocator predicate is unchanged across the
                    // class, so the epoch holds still even when the raw
                    // head demand moved; without one (native mode, or a
                    // matcher like MatchAll that makes no claim) the
                    // demand compare decides.
                    let sig = self.matchmaking.as_deref_mut().map(|m| {
                        m.prepare(&head_demand);
                        m.demand_signature()
                    });
                    let moved = match sig {
                        Some(Some(s)) => state.last_shadow_sig != Some(s),
                        _ => state.last_shadow_demand != Some(head_demand),
                    };
                    if moved {
                        state.last_shadow_demand = Some(head_demand);
                        state.last_shadow_sig = sig.flatten();
                        state.shadow_demand_epoch += 1;
                    }
                    let free_now = match self.matchmaking.as_deref_mut() {
                        Some(m) => self.cluster.free_nodes_satisfying_matched(&head_demand, m),
                        None => self.cluster.free_nodes_satisfying(&head_demand),
                    };
                    let crossing = {
                        let epoch = state.shadow_demand_epoch;
                        let runs = &state.runs;
                        let cluster = &self.cluster;
                        // Prepared for `head_demand` by the free count above;
                        // eligible counts below reuse that program set.
                        let mut matcher = self.matchmaking.as_deref_mut();
                        state
                            .release_table
                            .crossing(free_now, head_nodes, epoch, |run_id| {
                                let alloc = runs.alloc(run_id);
                                match matcher.as_deref_mut() {
                                    Some(m) => cluster.allocation_nodes_satisfying_matched(
                                        alloc,
                                        &head_demand,
                                        m,
                                    ),
                                    None => {
                                        cluster.allocation_nodes_satisfying(alloc, &head_demand)
                                    }
                                }
                            })
                    };
                    // The incremental path must agree with the historical
                    // rebuild-and-sort computation it replaced.
                    #[cfg(debug_assertions)]
                    {
                        let releases: Vec<(Time, u32)> = state
                            .runs
                            .iter_live()
                            .map(|(end, alloc)| {
                                let eligible = match self.matchmaking.as_deref_mut() {
                                    Some(m) => self.cluster.allocation_nodes_satisfying_matched(
                                        alloc,
                                        &head_demand,
                                        m,
                                    ),
                                    None => self
                                        .cluster
                                        .allocation_nodes_satisfying(alloc, &head_demand),
                                };
                                (end, eligible)
                            })
                            .collect();
                        debug_assert_eq!(
                            crossing.map(|t| t.max(now)),
                            shadow_time(free_now, head_nodes, &releases, now),
                            "incremental crossing diverged from shadow_time"
                        );
                    }
                    // The scan resumes just past the head's physical slot
                    // (tombstones in between self-reject in the hunt).
                    let past_head = state.queue.head_idx() + 1;
                    state.shadow_cache = Some(ShadowCache {
                        job: head_job,
                        demand: head_demand,
                        running_gen: state.running_gen,
                        structural: state.structural_epoch,
                        crossing,
                        scanned: past_head,
                    });
                    let Some(t_cross) = crossing else {
                        // The head's demand exceeds what even a drained
                        // cluster offers right now; completions will
                        // shrink it later.
                        break;
                    };
                    (t_cross.max(now), past_head)
                };
                // Phase 3: backfill the first job that fits now and is
                // conservatively done before the shadow time.
                // The scan alternates a read-mostly *hunt* over a
                // contiguous view of the queue — no per-element deque
                // index arithmetic — with a `try_start_at` call per
                // genuine candidate. The hunt rejects on the entry alone
                // (window, retry stamp) and gates fresh entries on the
                // epoch's free bound inline: a completion invalidates
                // every retry stamp at once, and this keeps the resulting
                // first pass from paying a full call per provably-refused
                // entry.
                let mut started = false;
                let mut hunt_from = scan_from;
                // The window the conservative completion must fit in;
                // `rt > window` is exactly `now + rt > shadow` (shadow is
                // never below `now`), hoisting the add out of the scan —
                // and tombstones' `Time::MAX` sentinel always fails it.
                let window = shadow.saturating_sub(now);
                loop {
                    let candidate = {
                        let epoch = state.retry_epoch;
                        let structural = state.structural_epoch;
                        let feedback = state.feedback_epoch;
                        let cluster = &self.cluster;
                        let mut matcher = self.matchmaking.as_deref_mut();
                        if state.free_cache_stamp != epoch {
                            state.free_cache.clear();
                            state.free_cache_sig.clear();
                            state.free_cache_stamp = epoch;
                        }
                        let cache = &mut state.free_cache;
                        let cache_sig = &mut state.free_cache_sig;
                        let slots = &state.group_epoch_by_slot;
                        let (rts, stamps, colds) = state.queue.hunt_columns(hunt_from);
                        let mut found = None;
                        for (off, (&rt, stamp)) in rts.iter().zip(stamps.iter_mut()).enumerate() {
                            // Bitwise `|`: both operands are one cheap
                            // load from a hot column, and fusing them
                            // leaves a single almost-always-taken skip
                            // branch instead of two half-predictable
                            // ones. Everything else lives in the cold
                            // column, touched only by survivors. Dead
                            // slots carry `Time::MAX` runtimes and fail
                            // the window like everything else.
                            #[allow(clippy::needless_bitwise_bool)]
                            if (rt > window) | (*stamp == epoch) {
                                continue;
                            }
                            let q = &colds[off];
                            let needs_refresh = q.structural_stamp != structural
                                || match q.scope_slot {
                                    SCOPE_STATIC => false,
                                    SCOPE_GLOBAL => q.feedback_stamp != feedback,
                                    slot => slots[slot as usize] > q.feedback_stamp,
                                };
                            if !needs_refresh {
                                let bound = match matcher.as_deref_mut() {
                                    Some(m) => {
                                        // Preparing before the probe is what
                                        // makes the signature key available;
                                        // it is a memo hit itself for every
                                        // demand class seen this epoch.
                                        m.prepare(&q.demand);
                                        if let Some(s) = m.demand_signature() {
                                            if let Some(&(_, f)) =
                                                cache_sig.iter().find(|(k, _)| *k == s)
                                            {
                                                f
                                            } else {
                                                let f = cluster
                                                    .free_nodes_satisfying_matched(&q.demand, m);
                                                cache_sig.push((s, f));
                                                f
                                            }
                                        } else if let Some(&(_, f)) =
                                            cache.iter().find(|(d, _)| d == &q.demand)
                                        {
                                            f
                                        } else {
                                            let f =
                                                cluster.free_nodes_satisfying_matched(&q.demand, m);
                                            cache.push((q.demand, f));
                                            f
                                        }
                                    }
                                    None => {
                                        if let Some(&(_, f)) =
                                            cache.iter().find(|(d, _)| d == &q.demand)
                                        {
                                            f
                                        } else {
                                            let f = cluster.free_nodes_satisfying(&q.demand);
                                            cache.push((q.demand, f));
                                            f
                                        }
                                    }
                                };
                                if q.nodes > bound {
                                    *stamp = epoch;
                                    continue;
                                }
                            }
                            found = Some(hunt_from + off);
                            break;
                        }
                        found
                    };
                    let Some(idx) = candidate else {
                        break;
                    };
                    if self.try_start_at(state, idx, now) {
                        started = true;
                        break;
                    }
                    hunt_from = idx + 1;
                }
                if !started {
                    // Extend the proof over everything scanned: the next
                    // pass under an unchanged key resumes after it. The
                    // position is physical — arrivals appended past it
                    // (and only those) are the unscanned tail.
                    if let Some(c) = state.shadow_cache.as_mut() {
                        c.scanned = state.queue.phys_len();
                    }
                    break;
                }
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resmatch_cluster::ClusterBuilder;
    use resmatch_workload::job::JobBuilder;

    const MB: u64 = 1024;

    fn cluster_32_24(per_pool: u32) -> Cluster {
        ClusterBuilder::new()
            .pool(per_pool, 32 * MB)
            .pool(per_pool, 24 * MB)
            .build()
    }

    fn wl(jobs: Vec<Job>) -> Workload {
        Workload::new(jobs)
    }

    #[test]
    fn single_job_runs_to_completion() {
        let jobs = wl(vec![JobBuilder::new(1)
            .nodes(4)
            .runtime(Time::from_secs(100))
            .requested_mem_kb(32 * MB)
            .used_mem_kb(10 * MB)
            .build()]);
        let r = Simulation::new(
            SimConfig::default(),
            cluster_32_24(4),
            EstimatorSpec::PassThrough,
        )
        .run(&jobs);
        assert_eq!(r.completed_jobs, 1);
        assert_eq!(r.failed_executions, 0);
        assert_eq!(r.records[0].wait(), Time::ZERO);
        assert_eq!(r.records[0].completion, Time::from_secs(100));
    }

    #[test]
    fn fcfs_head_of_line_blocking() {
        // Two 32 MB-requesting jobs saturate the 32 MB pool; a third small
        // job behind them must wait even though 24 MB nodes idle.
        let jobs = wl(vec![
            JobBuilder::new(1)
                .submit(Time::from_secs(0))
                .nodes(4)
                .runtime(Time::from_secs(100))
                .requested_mem_kb(32 * MB)
                .build(),
            JobBuilder::new(2)
                .submit(Time::from_secs(1))
                .nodes(4)
                .runtime(Time::from_secs(100))
                .requested_mem_kb(32 * MB)
                .build(),
            JobBuilder::new(3)
                .submit(Time::from_secs(2))
                .nodes(2)
                .runtime(Time::from_secs(10))
                .requested_mem_kb(8 * MB)
                .used_mem_kb(8 * MB)
                .build(),
        ]);
        let r = Simulation::new(
            SimConfig::default(),
            cluster_32_24(4),
            EstimatorSpec::PassThrough,
        )
        .run(&jobs);
        assert_eq!(r.completed_jobs, 3);
        let job2 = r.records.iter().find(|x| x.id.0 == 2).unwrap();
        let job3 = r.records.iter().find(|x| x.id.0 == 3).unwrap();
        // Job 2 waits for job 1's pool; job 3 (FCFS) waits behind job 2.
        assert_eq!(job2.final_start, Time::from_secs(100));
        assert!(job3.final_start >= job2.final_start);
    }

    #[test]
    fn backfilling_slips_small_jobs_through() {
        let jobs = wl(vec![
            JobBuilder::new(1)
                .submit(Time::from_secs(0))
                .nodes(4)
                .runtime(Time::from_secs(100))
                .requested_mem_kb(32 * MB)
                .build(),
            JobBuilder::new(2)
                .submit(Time::from_secs(1))
                .nodes(4)
                .runtime(Time::from_secs(100))
                .requested_mem_kb(32 * MB)
                .build(),
            JobBuilder::new(3)
                .submit(Time::from_secs(2))
                .nodes(2)
                .runtime(Time::from_secs(10))
                .requested_mem_kb(8 * MB)
                .used_mem_kb(8 * MB)
                .build(),
        ]);
        let cfg = SimConfig {
            scheduling: SchedulingPolicy::EasyBackfill,
            ..SimConfig::default()
        };
        let r = Simulation::new(cfg, cluster_32_24(4), EstimatorSpec::PassThrough).run(&jobs);
        let job3 = r.records.iter().find(|x| x.id.0 == 3).unwrap();
        // Job 3 finishes before job 2's shadow time, so it backfills at its
        // own arrival instead of waiting 100 s.
        assert_eq!(job3.final_start, Time::from_secs(2));
    }

    #[test]
    fn sjf_runs_shortest_first() {
        let jobs = wl(vec![
            // Job 1 occupies everything; 2 and 3 queue.
            JobBuilder::new(1)
                .submit(Time::from_secs(0))
                .nodes(8)
                .runtime(Time::from_secs(50))
                .requested_mem_kb(8 * MB)
                .used_mem_kb(8 * MB)
                .build(),
            JobBuilder::new(2)
                .submit(Time::from_secs(1))
                .nodes(8)
                .runtime(Time::from_secs(100))
                .requested_mem_kb(8 * MB)
                .used_mem_kb(8 * MB)
                .build(),
            JobBuilder::new(3)
                .submit(Time::from_secs(2))
                .nodes(8)
                .runtime(Time::from_secs(10))
                .requested_mem_kb(8 * MB)
                .used_mem_kb(8 * MB)
                .build(),
        ]);
        let cfg = SimConfig {
            scheduling: SchedulingPolicy::Sjf,
            ..SimConfig::default()
        };
        let r = Simulation::new(cfg, cluster_32_24(4), EstimatorSpec::PassThrough).run(&jobs);
        let start = |id: u64| r.records.iter().find(|x| x.id.0 == id).unwrap().final_start;
        // Job 3 (10 s) jumps ahead of job 2 (100 s) once job 1 finishes.
        assert!(start(3) < start(2));
    }

    #[test]
    fn under_provisioned_job_fails_and_retries() {
        // The estimator walks 32 → 16 → 8 MB with a job using 10 MB: the
        // probe at 8 MB fails once, the job retries at the restored
        // estimate and completes.
        let mut jobs = Vec::new();
        for i in 0..6 {
            jobs.push(
                JobBuilder::new(i)
                    .user(1)
                    .app(1)
                    .submit(Time::from_secs(i * 1_000))
                    .nodes(2)
                    .runtime(Time::from_secs(100))
                    .requested_mem_kb(32 * MB)
                    .used_mem_kb(10 * MB)
                    .build(),
            );
        }
        let cluster = ClusterBuilder::new()
            .pool(4, 32 * MB)
            .pool(4, 16 * MB)
            .pool(4, 8 * MB)
            .build();
        let r = Simulation::new(
            SimConfig::default(),
            cluster,
            EstimatorSpec::paper_successive(),
        )
        .run(&wl(jobs));
        assert_eq!(r.completed_jobs, 6);
        assert_eq!(r.failed_executions, 1, "exactly the 8 MB probe fails");
        assert!(r.wasted_node_seconds > 0.0);
        // Later jobs run with lowered estimates on the 16 MB pool.
        assert!(r.lowered_job_fraction() > 0.0);
    }

    #[test]
    fn impossible_jobs_are_dropped() {
        let jobs = wl(vec![
            JobBuilder::new(1)
                .nodes(100)
                .requested_mem_kb(32 * MB)
                .build(),
            JobBuilder::new(2)
                .nodes(2)
                .requested_mem_kb(8 * MB)
                .used_mem_kb(8 * MB)
                .build(),
        ]);
        let r = Simulation::new(
            SimConfig::default(),
            cluster_32_24(4),
            EstimatorSpec::PassThrough,
        )
        .run(&jobs);
        assert_eq!(r.dropped_jobs, 1);
        assert_eq!(r.completed_jobs, 1);
    }

    #[test]
    fn request_violating_job_is_abandoned_not_retried_forever() {
        // A trace that violates the request-covers-usage assumption: the
        // job uses 30 MB but requests 8 MB, so best-fit places it on 24 MB
        // nodes and even the full request cannot save it. The engine must
        // abandon it after the request-level attempt instead of looping.
        let jobs = wl(vec![
            JobBuilder::new(1)
                .nodes(2)
                .requested_mem_kb(8 * MB)
                .used_mem_kb(30 * MB)
                .runtime(Time::from_secs(10))
                .build(),
            JobBuilder::new(2)
                .submit(Time::from_secs(1))
                .nodes(2)
                .requested_mem_kb(8 * MB)
                .used_mem_kb(8 * MB)
                .runtime(Time::from_secs(10))
                .build(),
        ]);
        let r = Simulation::new(
            SimConfig::default(),
            cluster_32_24(4),
            EstimatorSpec::PassThrough,
        )
        .run(&jobs);
        assert_eq!(r.dropped_jobs, 1);
        assert_eq!(r.completed_jobs, 1);
        assert_eq!(r.failed_executions, 1, "exactly one doomed execution");
    }

    #[test]
    fn estimation_lets_jobs_use_small_pool() {
        // Phase 1: the group learns while the cluster is empty. Phase 2: a
        // hog occupies the whole 32 MB pool for a long time. Phase 3: more
        // group members arrive — with estimation they run on the 24 MB pool
        // immediately; without it they wait out the hog.
        let mut jobs = Vec::new();
        for i in 0..3 {
            jobs.push(
                JobBuilder::new(i)
                    .user(7)
                    .app(7)
                    .submit(Time::from_secs(i * 200))
                    .nodes(4)
                    .runtime(Time::from_secs(100))
                    .requested_mem_kb(32 * MB)
                    .used_mem_kb(4 * MB)
                    .build(),
            );
        }
        jobs.push(
            JobBuilder::new(100)
                .submit(Time::from_secs(1_000))
                .nodes(4)
                .runtime(Time::from_secs(10_000))
                .requested_mem_kb(32 * MB)
                .used_mem_kb(32 * MB)
                .build(),
        );
        for i in 0..4 {
            jobs.push(
                JobBuilder::new(200 + i)
                    .user(7)
                    .app(7)
                    .submit(Time::from_secs(1_100 + i * 10))
                    .nodes(4)
                    .runtime(Time::from_secs(100))
                    .requested_mem_kb(32 * MB)
                    .used_mem_kb(4 * MB)
                    .build(),
            );
        }
        let workload = wl(jobs);
        let base = Simulation::new(
            SimConfig::default(),
            cluster_32_24(4),
            EstimatorSpec::PassThrough,
        )
        .run(&workload);
        let est = Simulation::new(
            SimConfig::default(),
            cluster_32_24(4),
            EstimatorSpec::paper_successive(),
        )
        .run(&workload);
        assert_eq!(est.completed_jobs, base.completed_jobs);
        // Baseline: the four phase-3 jobs wait ~10,000 s behind the hog.
        assert!(
            base.mean_wait_s() > 4_000.0,
            "baseline {}",
            base.mean_wait_s()
        );
        // Estimation: they run on the 24 MB pool immediately.
        assert!(
            est.mean_wait_s() < 100.0,
            "estimation wait {}",
            est.mean_wait_s()
        );
        assert!(est.utilization() > base.utilization());
        // Phase-3 jobs were lowered and benefited.
        let benefited = est.records.iter().filter(|r| r.benefited).count();
        assert!(benefited >= 4, "benefited {benefited}");
    }

    #[test]
    fn queued_jobs_pick_up_fresh_estimates() {
        // A member is queued behind the hog *before* its group has learned;
        // the learning happens while it waits (an earlier member finishes).
        // On the next scheduling pass the queued member must use the fresh
        // estimate and slip onto the 24 MB pool.
        let jobs = wl(vec![
            // The learner: starts immediately, finishes at t=100.
            JobBuilder::new(1)
                .user(7)
                .app(7)
                .submit(Time::ZERO)
                .nodes(2)
                .runtime(Time::from_secs(100))
                .requested_mem_kb(32 * MB)
                .used_mem_kb(4 * MB)
                .build(),
            // The hog: grabs the remaining 32 MB nodes until t=10,000.
            JobBuilder::new(2)
                .submit(Time::from_secs(1))
                .nodes(2)
                .runtime(Time::from_secs(10_000))
                .requested_mem_kb(32 * MB)
                .used_mem_kb(32 * MB)
                .build(),
            // The beneficiary: queued at t=2 with a cold estimate (32 MB),
            // blocked; at t=100 the learner's feedback refreshes it.
            JobBuilder::new(3)
                .user(7)
                .app(7)
                .submit(Time::from_secs(2))
                .nodes(2)
                .runtime(Time::from_secs(50))
                .requested_mem_kb(32 * MB)
                .used_mem_kb(4 * MB)
                .build(),
        ]);
        let r = Simulation::new(
            SimConfig::default(),
            cluster_32_24(2),
            EstimatorSpec::paper_successive(),
        )
        .run(&jobs);
        let job3 = r.records.iter().find(|x| x.id.0 == 3).unwrap();
        assert_eq!(
            job3.final_start,
            Time::from_secs(100),
            "job 3 must start the moment the learner's feedback lands"
        );
        assert!(job3.lowered);
    }

    #[test]
    fn oracle_never_fails_and_packs_tightest() {
        let mut jobs = Vec::new();
        for i in 0..20 {
            jobs.push(
                JobBuilder::new(i)
                    .user(i as u32 % 3)
                    .app(1)
                    .submit(Time::from_secs(i))
                    .nodes(2)
                    .runtime(Time::from_secs(50))
                    .requested_mem_kb(32 * MB)
                    .used_mem_kb(6 * MB)
                    .build(),
            );
        }
        let r = Simulation::new(
            SimConfig::default(),
            cluster_32_24(4),
            EstimatorSpec::Oracle,
        )
        .run(&wl(jobs));
        assert_eq!(r.failed_executions, 0);
        assert_eq!(r.completed_jobs, 20);
    }

    #[test]
    fn false_positive_injection_retries_to_completion() {
        let jobs = wl((0..10)
            .map(|i| {
                JobBuilder::new(i)
                    .submit(Time::from_secs(i * 5))
                    .nodes(2)
                    .runtime(Time::from_secs(20))
                    .requested_mem_kb(8 * MB)
                    .used_mem_kb(8 * MB)
                    .build()
            })
            .collect());
        let cfg = SimConfig {
            false_positive_rate: 0.3,
            seed: 11,
            ..SimConfig::default()
        };
        let r = Simulation::new(cfg, cluster_32_24(4), EstimatorSpec::PassThrough).run(&jobs);
        assert_eq!(r.completed_jobs, 10, "every job must eventually finish");
        assert!(r.failed_executions > 0, "injection must actually fire");
        assert!(r.busy_utilization() > r.utilization());
    }

    #[test]
    fn deterministic_given_seed() {
        let jobs: Workload = (0..50)
            .map(|i| {
                JobBuilder::new(i)
                    .user(i as u32 % 5)
                    .app(i as u32 % 3)
                    .submit(Time::from_secs(i * 7))
                    .nodes(1 + (i as u32 % 4))
                    .runtime(Time::from_secs(30 + i * 3))
                    .requested_mem_kb(32 * MB)
                    .used_mem_kb((4 + (i % 20)) * MB)
                    .build()
            })
            .collect();
        let run = || {
            Simulation::new(
                SimConfig::default(),
                cluster_32_24(8),
                EstimatorSpec::paper_successive(),
            )
            .run(&jobs)
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
    }

    #[test]
    fn explicit_feedback_with_last_instance() {
        use resmatch_core::last_instance::LastInstanceConfig;
        let jobs: Workload = (0..10)
            .map(|i| {
                JobBuilder::new(i)
                    .user(1)
                    .app(1)
                    .submit(Time::from_secs(i * 200))
                    .nodes(2)
                    .runtime(Time::from_secs(100))
                    .requested_mem_kb(32 * MB)
                    .used_mem_kb(5 * MB)
                    .build()
            })
            .collect();
        let cfg = SimConfig {
            feedback: FeedbackMode::Explicit,
            ..SimConfig::default()
        };
        let r = Simulation::new(
            cfg,
            cluster_32_24(4),
            EstimatorSpec::LastInstance(LastInstanceConfig::default()),
        )
        .run(&jobs);
        assert_eq!(r.completed_jobs, 10);
        assert_eq!(
            r.failed_executions, 0,
            "explicit feedback never probes blind"
        );
        // All but the first submission run lowered.
        assert!(r.lowered_job_fraction() >= 0.8);
    }

    #[test]
    fn queue_statistics_are_time_weighted() {
        // Job 1 occupies all 8 nodes for 100 s; job 2 queues the whole
        // time, then runs 100 s. Queue length is 1 for the first half of
        // the 200 s horizon and 0 for the second; 8 nodes stay busy
        // throughout.
        let jobs = wl(vec![
            JobBuilder::new(1)
                .nodes(8)
                .runtime(Time::from_secs(100))
                .requested_mem_kb(8 * MB)
                .used_mem_kb(8 * MB)
                .build(),
            JobBuilder::new(2)
                .nodes(8)
                .runtime(Time::from_secs(100))
                .requested_mem_kb(8 * MB)
                .used_mem_kb(8 * MB)
                .build(),
        ]);
        let r = Simulation::new(
            SimConfig::default(),
            cluster_32_24(4),
            EstimatorSpec::PassThrough,
        )
        .run(&jobs);
        assert!(
            (r.mean_queue_length - 0.5).abs() < 1e-9,
            "{}",
            r.mean_queue_length
        );
        assert!(
            (r.mean_busy_nodes - 8.0).abs() < 1e-9,
            "{}",
            r.mean_busy_nodes
        );
        // Per-pool: 8 MB requests land on the 24 MB pool (best-fit) plus
        // spill to 32 MB: both pools of 4 are fully busy throughout.
        assert_eq!(r.pool_stats.len(), 2);
        for p in &r.pool_stats {
            assert!((p.mean_busy_fraction - 1.0).abs() < 1e-9, "{p:?}");
        }
    }

    #[test]
    fn pool_stats_show_the_idle_small_pool() {
        // 32 MB-requesting jobs keep the 32 MB pool busy; the 24 MB pool
        // never sees work without estimation.
        let jobs = wl((0..4)
            .map(|i| {
                JobBuilder::new(i)
                    .submit(Time::from_secs(i * 100))
                    .nodes(4)
                    .runtime(Time::from_secs(100))
                    .requested_mem_kb(32 * MB)
                    .used_mem_kb(4 * MB)
                    .build()
            })
            .collect());
        let r = Simulation::new(
            SimConfig::default(),
            cluster_32_24(4),
            EstimatorSpec::PassThrough,
        )
        .run(&jobs);
        let pool = |mem_mb: u64| {
            r.pool_stats
                .iter()
                .find(|p| p.mem_kb == mem_mb * MB)
                .unwrap()
                .mean_busy_fraction
        };
        assert!((pool(32) - 1.0).abs() < 1e-9);
        assert_eq!(pool(24), 0.0);
    }

    #[test]
    fn trace_log_records_the_figure7_story() {
        use crate::tracelog::TraceKind;
        // A group walking 32 → 16 → 8 → 4(fail) → 8: the log must contain
        // every admission, start, completion, and the one failure.
        let mut jobs = Vec::new();
        for i in 0..6 {
            jobs.push(
                JobBuilder::new(i + 1)
                    .user(1)
                    .app(1)
                    .submit(Time::from_secs(i * 1_000))
                    .nodes(2)
                    .runtime(Time::from_secs(100))
                    .requested_mem_kb(32 * MB)
                    .used_mem_kb(5 * MB)
                    .build(),
            );
        }
        let cluster = ClusterBuilder::new()
            .pool(4, 32 * MB)
            .pool(4, 16 * MB)
            .pool(4, 8 * MB)
            .pool(4, 4 * MB)
            .build();
        let r = Simulation::new(
            SimConfig::default(),
            cluster,
            EstimatorSpec::paper_successive(),
        )
        .with_observer(Box::new(crate::observer::TraceLogObserver::new()))
        .run(&wl(jobs));
        assert!(!r.trace_log.is_empty());
        // Jobs run serially, so the granted trajectory across successive
        // group members is the Figure 7 staircase.
        let granted: Vec<u64> = r
            .trace_log
            .entries()
            .iter()
            .filter_map(|e| match e.kind {
                TraceKind::Started { granted_kb, .. } => Some(granted_kb / MB),
                _ => None,
            })
            .collect();
        assert_eq!(granted, vec![32, 16, 8, 4, 8, 8, 8]);
        let failures = r
            .trace_log
            .entries()
            .iter()
            .filter(|e| matches!(e.kind, TraceKind::Failed))
            .count();
        assert_eq!(failures, 1);
        // Disabled by default: a fresh run carries no log.
        let quiet = Simulation::new(
            SimConfig::default(),
            cluster_32_24(4),
            EstimatorSpec::PassThrough,
        )
        .run(&wl(vec![JobBuilder::new(1).nodes(1).build()]));
        assert!(quiet.trace_log.is_empty());
    }

    #[test]
    fn churn_leave_blocks_and_rejoin_unblocks() {
        // The whole 32 MB pool leaves at t=50; a 28 MB-demanding job
        // arriving at t=100 must wait until the pool rejoins at t=500.
        let jobs = wl(vec![JobBuilder::new(1)
            .submit(Time::from_secs(100))
            .nodes(2)
            .runtime(Time::from_secs(10))
            .requested_mem_kb(28 * MB)
            .used_mem_kb(28 * MB)
            .build()]);
        let r = Simulation::new(
            SimConfig::default(),
            cluster_32_24(4),
            EstimatorSpec::PassThrough,
        )
        .with_churn(vec![
            ChurnEvent {
                time: Time::from_secs(50),
                mem_kb: 32 * MB,
                delta: -4,
            },
            ChurnEvent {
                time: Time::from_secs(500),
                mem_kb: 32 * MB,
                delta: 4,
            },
        ])
        .run(&jobs);
        assert_eq!(r.completed_jobs, 1);
        assert_eq!(r.records[0].final_start, Time::from_secs(500));
    }

    #[test]
    fn churn_permanent_leave_drops_starved_jobs() {
        let jobs = wl(vec![
            JobBuilder::new(1)
                .submit(Time::from_secs(100))
                .nodes(2)
                .runtime(Time::from_secs(10))
                .requested_mem_kb(28 * MB)
                .used_mem_kb(28 * MB)
                .build(),
            JobBuilder::new(2)
                .submit(Time::from_secs(100))
                .nodes(2)
                .runtime(Time::from_secs(5))
                .requested_mem_kb(8 * MB)
                .used_mem_kb(8 * MB)
                .build(),
        ]);
        let r = Simulation::new(
            SimConfig {
                // Under SJF the shorter job 2 is tried first and runs; the
                // starved job 1 is abandoned when events drain.
                scheduling: SchedulingPolicy::Sjf,
                ..SimConfig::default()
            },
            cluster_32_24(4),
            EstimatorSpec::PassThrough,
        )
        .with_churn(vec![ChurnEvent {
            time: Time::from_secs(50),
            mem_kb: 32 * MB,
            delta: -4,
        }])
        .run(&jobs);
        assert_eq!(r.completed_jobs, 1);
        assert_eq!(r.dropped_jobs, 1);
    }

    #[test]
    fn churn_never_revokes_running_jobs() {
        // The leave fires mid-run; the running job must finish unharmed.
        let jobs = wl(vec![JobBuilder::new(1)
            .nodes(4)
            .runtime(Time::from_secs(100))
            .requested_mem_kb(28 * MB)
            .used_mem_kb(20 * MB)
            .build()]);
        let r = Simulation::new(
            SimConfig::default(),
            cluster_32_24(4),
            EstimatorSpec::PassThrough,
        )
        .with_churn(vec![ChurnEvent {
            time: Time::from_secs(10),
            mem_kb: 32 * MB,
            delta: -4,
        }])
        .run(&jobs);
        assert_eq!(r.completed_jobs, 1);
        assert_eq!(r.failed_executions, 0);
        assert_eq!(r.records[0].completion, Time::from_secs(100));
    }

    #[test]
    fn queue_len_context_excludes_the_estimated_job() {
        // EstimateContext::queue_len counts *other* waiting jobs, at first
        // admission and at in-queue refresh alike. Record every context the
        // estimator sees and check the refresh path against the convention
        // (it used to count the refreshed entry itself).
        use std::sync::{Arc, Mutex};

        struct Recorder {
            seen: Arc<Mutex<Vec<(u64, usize)>>>,
        }
        impl ResourceEstimator for Recorder {
            fn name(&self) -> &'static str {
                "recorder"
            }
            fn estimate(&mut self, job: &Job, ctx: &EstimateContext) -> Demand {
                self.seen.lock().unwrap().push((job.id.0, ctx.queue_len));
                requested_demand(job)
            }
            fn feedback(
                &mut self,
                _job: &Job,
                _granted: &Demand,
                _fb: &Feedback,
                _ctx: &EstimateContext,
            ) {
            }
        }

        // One 4-node pool; three whole-cluster jobs run strictly serially,
        // so every queue length below is forced.
        let jobs = wl((1..=3)
            .map(|i| {
                JobBuilder::new(i)
                    .submit(Time::from_secs(i - 1))
                    .nodes(4)
                    .runtime(Time::from_secs(100))
                    .requested_mem_kb(8 * MB)
                    .used_mem_kb(8 * MB)
                    .build()
            })
            .collect());
        let cluster = ClusterBuilder::new().pool(4, 32 * MB).build();
        let seen = Arc::new(Mutex::new(Vec::new()));
        let r = Simulation::builder()
            .cluster(cluster)
            .boxed_estimator(Box::new(Recorder { seen: seen.clone() }))
            .build()
            .expect("cluster and estimator are set")
            .run(&jobs);
        assert_eq!(r.completed_jobs, 3);
        assert_eq!(
            *seen.lock().unwrap(),
            vec![
                (1, 0), // arrival of 1: nothing else waiting
                (2, 0), // arrival of 2: 1 is running, queue empty
                (3, 1), // arrival of 3: 2 queued ahead
                (2, 1), // refresh of 2 at t=100: only 3 is *other*
                (3, 0), // refresh of 3 at t=100 after 2 started
                (3, 0), // refresh of 3 at t=200
            ],
        );
    }

    #[test]
    fn max_attempts_falls_back_to_request() {
        // A pathological group: members alternate usage so a frozen
        // estimate would starve one member; the engine must bail it out.
        let mut jobs = Vec::new();
        for i in 0..12 {
            let used = if i % 2 == 0 { 4 * MB } else { 20 * MB };
            jobs.push(
                JobBuilder::new(i)
                    .user(1)
                    .app(1)
                    .submit(Time::from_secs(i * 500))
                    .nodes(2)
                    .runtime(Time::from_secs(100))
                    .requested_mem_kb(32 * MB)
                    .used_mem_kb(used)
                    .build(),
            );
        }
        let cluster = ClusterBuilder::new()
            .pool(4, 32 * MB)
            .pool(4, 8 * MB)
            .build();
        let r = Simulation::new(
            SimConfig::default(),
            cluster,
            EstimatorSpec::paper_successive(),
        )
        .run(&wl(jobs));
        assert_eq!(r.completed_jobs, 12, "no member may starve");
    }
}
