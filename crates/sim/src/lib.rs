//! Discrete-event cluster scheduling simulator for the `resmatch` workspace.
//!
//! Reproduces the paper's §3.1 simulation environment: a space-shared
//! heterogeneous cluster, FCFS scheduling with no preemption (plus EASY
//! backfilling and shortest-job-first as the extensions the paper defers to
//! future work), and the paper's failure semantics — "when a job is
//! scheduled for execution, but not enough resources are allocated for it,
//! it fails after a random time, drawn uniformly between zero and the
//! execution run-time of that job. Once it fails, the job returns to the
//! head of the queue."
//!
//! The estimator under test plugs in through
//! [`resmatch_core::ResourceEstimator`]; [`spec::EstimatorSpec`] names every
//! estimator in the workspace so experiments stay declarative, and
//! [`experiment`] drives offered-load and cluster sweeps (in parallel, one
//! deterministic simulation per thread).
//!
//! # Quick example
//!
//! ```
//! use resmatch_sim::prelude::*;
//! use resmatch_cluster::ClusterBuilder;
//! use resmatch_workload::synthetic::{generate, Cm5Config};
//!
//! let trace = generate(&Cm5Config { jobs: 300, ..Cm5Config::default() }, 7);
//! let cluster = ClusterBuilder::new().pool(512, 32 * 1024).pool(512, 24 * 1024).build();
//! let result = Simulation::new(SimConfig::default(), cluster, EstimatorSpec::PassThrough)
//!     .run(&trace);
//! assert_eq!(result.completed_jobs, 300);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod build;
pub mod csv;
pub mod engine;
pub mod event;
pub mod experiment;
pub mod metrics;
pub mod observer;
mod queue;
mod release;
pub mod scheduler;
mod store;
pub mod tracelog;

// `EstimatorSpec` moved to `resmatch_core::spec` so non-simulating callers
// (the estimator service) can build estimators declaratively; the old
// `resmatch_sim::spec` path keeps working through this re-export.
pub use resmatch_core::spec;

/// Common imports for simulator users.
pub mod prelude {
    pub use crate::build::{SimError, SimulationBuilder};
    pub use crate::engine::{ChurnEvent, FeedbackMode, SimArena, SimConfig, Simulation};
    pub use crate::experiment::{
        cluster_sweep_csv, load_sweep_csv, run_cluster_sweep, run_cluster_sweep_observed,
        run_load_sweep, run_load_sweep_observed, ClusterSweepPoint, LoadPoint, SweepConfig,
    };
    pub use crate::metrics::{saturation_utilization, JobRecord, RunCounters, SimResult};
    pub use crate::observer::{
        CountersObserver, CountersSnapshot, MultiObserver, ProgressObserver, SimObserver,
        SweepObserver, TraceLogObserver,
    };
    pub use crate::scheduler::SchedulingPolicy;
    pub use crate::spec::{EstimatorSpec, ParseEstimatorError};
    pub use crate::tracelog::{TraceEntry, TraceKind, TraceLog};
}

pub use prelude::*;
