//! The struct-of-arrays job queue.
//!
//! The engine's wait queue used to be a `VecDeque` of ~96-byte entries.
//! Two costs dominated it at trace scale (122k jobs, thousands queued):
//!
//! - the EASY backfill hunt re-scans the whole queue after every
//!   completion, and nearly every entry is rejected by two cheap fields
//!   (the conservative-runtime window and the retry stamp) — yet the
//!   array-of-structs layout streamed all 96 bytes per entry through the
//!   cache to read 16;
//! - starting a mid-queue entry paid an O(queue) `VecDeque::remove`
//!   memmove per backfill.
//!
//! This queue splits the entry into *hot* parallel columns — requested
//! runtime and retry stamp, the two loads the hunt's fused reject needs —
//! and one *cold* column with everything else, touched only for the few
//! entries that survive the reject. Removal tombstones the slot in O(1)
//! instead of shifting (dead slots park a [`Time::MAX`] sentinel in the
//! hot runtime column, so the hunt skips them through the same window
//! check it already does), and the columns compact amortized-O(1) once
//! dead slots outnumber live ones.
//!
//! Physical indices are stable except across a start (tombstone +
//! possible compaction) or a requeue at the head — exactly the events
//! that already invalidate the engine's [`ShadowCache`] via the running
//! generation, so the cache's saved scan positions never dangle.
//!
//! SJF cannot tolerate tombstones: it locates entries by binary search on
//! the queue rank (`seq`), which dead slots with stale ranks would break.
//! Under SJF the queue runs in *compacting* mode — physical removal, all
//! slots live — matching the historical `VecDeque` shape; SJF never runs
//! the hunt, so it keeps none of the tombstone costs either.
//!
//! [`ShadowCache`]: crate::engine

use resmatch_cluster::Demand;
use resmatch_workload::Time;

/// A queued (re)submission — the transfer type between the engine and the
/// queue's columns. Field semantics are the engine's (see `crate::engine`);
/// the queue itself only interprets `seq` (compacting-mode binary search)
/// and `requested_runtime` / `failed_alloc_stamp` (the hot columns).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Queued {
    /// Index of the job in the engine's job store.
    pub job: usize,
    /// Failed executions at admission time.
    pub attempts: u32,
    /// Estimated demand.
    pub demand: Demand,
    /// Structural epoch (membership churn) the estimate was computed at.
    pub structural_stamp: u64,
    /// Feedback epoch the estimate was computed at.
    pub feedback_stamp: u64,
    /// Demand is strictly below the request (memory or packages).
    pub lowered: bool,
    /// Estimation strictly enlarged the candidate-machine set.
    pub benefited: bool,
    /// Queue-order rank: `push_front` assigns strictly decreasing values,
    /// `push_back` strictly increasing ones, so live entries are always
    /// sorted ascending by `seq` and an entry's rank survives index
    /// shifts. SJF uses it both as the heap tie-break (first-minimum =
    /// lowest rank) and to find an entry's current index by binary search.
    pub seq: i64,
    /// The job's requested runtime, mirrored into a hot column so the
    /// backfill scan reads the queue sequentially.
    pub requested_runtime: Time,
    /// Retry epoch at this entry's last refused allocation, or `u64::MAX`
    /// if none; mirrored into a hot column.
    pub failed_alloc_stamp: u64,
    /// The job's node count, copied inline for the allocation attempt.
    pub nodes: u32,
    /// Which feedback can invalidate this estimate (engine `SCOPE_*`
    /// encoding).
    pub scope_slot: u32,
}

/// Cold per-entry state: everything the hunt's fused reject does not
/// read. The hunt touches one of these only for entries that survive the
/// hot-column checks, so the fields stay out of the scan's cache traffic.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ColdSlot {
    pub(crate) job: usize,
    pub(crate) attempts: u32,
    pub(crate) demand: Demand,
    pub(crate) structural_stamp: u64,
    pub(crate) feedback_stamp: u64,
    pub(crate) seq: i64,
    pub(crate) nodes: u32,
    pub(crate) scope_slot: u32,
    pub(crate) lowered: bool,
    pub(crate) benefited: bool,
    pub(crate) dead: bool,
}

/// Hot runtime-column sentinel for tombstoned slots: no backfill window
/// reaches it, so the hunt skips dead slots with the load it already does.
const DEAD_RT: Time = Time::MAX;

/// Struct-of-arrays wait queue. See the module docs for the layout and
/// the tombstone/compacting split.
#[derive(Debug, Default)]
pub(crate) struct JobQueue {
    /// Hot: requested runtime per slot (`DEAD_RT` when tombstoned).
    rt: Vec<Time>,
    /// Hot: retry-epoch stamp of the last refused allocation per slot.
    stamp: Vec<u64>,
    /// Cold: the rest of the entry.
    cold: Vec<ColdSlot>,
    /// First physical slot that may be live; every slot below it is dead.
    head: usize,
    /// Live entry count — the queue's logical length.
    live: usize,
    /// Compacting mode (SJF): remove shifts instead of tombstoning, so
    /// every slot is live and binary search by `seq` spans all columns.
    compacting: bool,
}

impl JobQueue {
    /// Logical (live) length — the number everything semantic uses:
    /// estimate contexts, time-weighted statistics, end-of-run drops.
    pub(crate) fn len(&self) -> usize {
        self.live
    }

    /// True when no live entries remain.
    pub(crate) fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Physical column length, including tombstones. Scan positions
    /// (`ShadowCache::scanned`, the hunt cursor) are physical indices.
    pub(crate) fn phys_len(&self) -> usize {
        self.cold.len()
    }

    /// Clear all columns, keeping their capacity, and set the removal
    /// mode for the next run.
    pub(crate) fn reset(&mut self, compacting: bool) {
        self.rt.clear();
        self.stamp.clear();
        self.cold.clear();
        self.head = 0;
        self.live = 0;
        self.compacting = compacting;
    }

    /// Physical index of the head (first live) entry.
    ///
    /// # Panics
    /// In debug builds, when the queue is empty.
    pub(crate) fn head_idx(&self) -> usize {
        debug_assert!(self.live > 0, "head_idx on an empty queue");
        self.head
    }

    /// Reassemble the entry at physical index `idx`.
    pub(crate) fn get(&self, idx: usize) -> Queued {
        let c = &self.cold[idx];
        debug_assert!(!c.dead, "get on a tombstoned slot");
        Queued {
            job: c.job,
            attempts: c.attempts,
            demand: c.demand,
            structural_stamp: c.structural_stamp,
            feedback_stamp: c.feedback_stamp,
            lowered: c.lowered,
            benefited: c.benefited,
            seq: c.seq,
            requested_runtime: self.rt[idx],
            failed_alloc_stamp: self.stamp[idx],
            nodes: c.nodes,
            scope_slot: c.scope_slot,
        }
    }

    /// The head entry, if any.
    pub(crate) fn front(&self) -> Option<Queued> {
        (self.live > 0).then(|| self.get(self.head))
    }

    /// Overwrite the entry at `idx` in place (estimate refresh): the
    /// physical position, and therefore the queue order, is unchanged.
    pub(crate) fn set(&mut self, idx: usize, q: Queued) {
        debug_assert!(!self.cold[idx].dead, "set on a tombstoned slot");
        self.rt[idx] = q.requested_runtime;
        self.stamp[idx] = q.failed_alloc_stamp;
        self.cold[idx] = Self::cold_of(&q);
    }

    /// Record a refused allocation on the hot stamp column.
    pub(crate) fn set_failed_stamp(&mut self, idx: usize, epoch: u64) {
        debug_assert!(!self.cold[idx].dead, "stamp on a tombstoned slot");
        self.stamp[idx] = epoch;
    }

    /// Append at the back.
    pub(crate) fn push_back(&mut self, q: Queued) {
        self.rt.push(q.requested_runtime);
        self.stamp.push(q.failed_alloc_stamp);
        self.cold.push(Self::cold_of(&q));
        if self.live == 0 {
            // The previous head position may sit past a dead suffix.
            self.head = self.cold.len() - 1;
        }
        self.live += 1;
    }

    /// Insert at the front ("returns to the head of the queue"). Reuses
    /// the dead slot just below the head when one exists — requeues after
    /// a failure are O(1) in the common case — and falls back to a column
    /// shift otherwise.
    pub(crate) fn push_front(&mut self, q: Queued) {
        if self.live == 0 {
            self.push_back(q);
            return;
        }
        if self.head > 0 {
            self.head -= 1;
            let idx = self.head;
            self.rt[idx] = q.requested_runtime;
            self.stamp[idx] = q.failed_alloc_stamp;
            self.cold[idx] = Self::cold_of(&q);
        } else {
            self.rt.insert(0, q.requested_runtime);
            self.stamp.insert(0, q.failed_alloc_stamp);
            self.cold.insert(0, Self::cold_of(&q));
        }
        self.live += 1;
    }

    /// Remove and return the entry at `idx`: a physical shift in
    /// compacting mode, an O(1) tombstone otherwise (with amortized
    /// compaction once dead slots exceed a quarter of the live ones —
    /// the hunt pays for every dead slot it strides over, so the
    /// threshold trades copy traffic for scan density).
    pub(crate) fn remove(&mut self, idx: usize) -> Queued {
        let out = self.get(idx);
        self.live -= 1;
        if self.compacting {
            self.rt.remove(idx);
            self.stamp.remove(idx);
            self.cold.remove(idx);
        } else {
            self.cold[idx].dead = true;
            self.rt[idx] = DEAD_RT;
            while self.head < self.cold.len() && self.cold[self.head].dead {
                self.head += 1;
            }
            if self.cold.len() - self.live > (self.live / 4).max(64) {
                self.compact();
            }
        }
        out
    }

    /// Drop every dead slot, preserving live order. Callers run this only
    /// on removal — i.e. a start — which already invalidates every saved
    /// physical scan position via the engine's running generation.
    fn compact(&mut self) {
        let mut w = 0;
        for r in 0..self.cold.len() {
            if !self.cold[r].dead {
                self.cold[w] = self.cold[r];
                self.rt[w] = self.rt[r];
                self.stamp[w] = self.stamp[r];
                w += 1;
            }
        }
        debug_assert_eq!(w, self.live);
        self.cold.truncate(w);
        self.rt.truncate(w);
        self.stamp.truncate(w);
        self.head = 0;
    }

    /// Physical index of the live entry with queue rank `seq`
    /// (compacting mode only: every slot is live and ranks are sorted).
    ///
    /// # Panics
    /// When no entry holds that rank — the SJF heap mirrors the queue, so
    /// a miss is an engine invariant violation.
    pub(crate) fn index_of_seq(&self, seq: i64) -> usize {
        debug_assert!(self.compacting, "seq search requires compacting mode");
        self.cold
            .binary_search_by(|c| c.seq.cmp(&seq))
            .expect("invariant: the SJF heap mirrors the queue")
    }

    /// The hunt's column view from physical index `from`: shared runtime
    /// column, mutable stamp column (the hunt records refusals inline),
    /// and the cold slots for survivors of the fused reject.
    pub(crate) fn hunt_columns(&mut self, from: usize) -> (&[Time], &mut [u64], &[ColdSlot]) {
        (
            &self.rt[from..],
            &mut self.stamp[from..],
            &self.cold[from..],
        )
    }

    /// First-minimum scan over the requested-runtime column — the SJF
    /// debug cross-check's reference answer (compacting mode: all live).
    /// Compiled in all profiles because `debug_assert!` bodies are.
    pub(crate) fn debug_first_min_runtime_idx(&self) -> Option<usize> {
        self.rt
            .iter()
            .enumerate()
            .min_by_key(|&(_, rt)| rt)
            .map(|(i, _)| i)
    }

    /// Walk live entries' `(physical index, entry)` pairs (debug checks
    /// and tests; not on any hot path).
    #[cfg(test)]
    pub(crate) fn debug_live(&self) -> impl Iterator<Item = (usize, Queued)> + '_ {
        (0..self.cold.len())
            .filter(move |&i| !self.cold[i].dead)
            .map(move |i| (i, self.get(i)))
    }

    fn cold_of(q: &Queued) -> ColdSlot {
        ColdSlot {
            job: q.job,
            attempts: q.attempts,
            demand: q.demand,
            structural_stamp: q.structural_stamp,
            feedback_stamp: q.feedback_stamp,
            seq: q.seq,
            nodes: q.nodes,
            scope_slot: q.scope_slot,
            lowered: q.lowered,
            benefited: q.benefited,
            dead: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(job: usize, seq: i64, rt_s: u64) -> Queued {
        Queued {
            job,
            attempts: 0,
            demand: Demand::default(),
            structural_stamp: 0,
            feedback_stamp: 0,
            lowered: false,
            benefited: false,
            seq,
            requested_runtime: Time::from_secs(rt_s),
            failed_alloc_stamp: u64::MAX,
            nodes: 1,
            scope_slot: 0,
        }
    }

    #[test]
    fn tombstone_removal_preserves_order_and_length() {
        let mut q = JobQueue::default();
        q.reset(false);
        for (i, seq) in (0..5).enumerate() {
            q.push_back(entry(i, seq, 10));
        }
        assert_eq!(q.len(), 5);
        // Remove the head and a mid entry.
        let h = q.remove(q.head_idx());
        assert_eq!(h.job, 0);
        q.remove(2);
        assert_eq!(q.len(), 3);
        assert_eq!(q.front().unwrap().job, 1);
        // Physical indices are stable: job 3 still sits at slot 3.
        assert_eq!(q.get(3).job, 3);
        assert_eq!(q.phys_len(), 5);
    }

    #[test]
    fn push_front_reuses_dead_head_slot() {
        let mut q = JobQueue::default();
        q.reset(false);
        q.push_back(entry(0, 0, 10));
        q.push_back(entry(1, 1, 10));
        q.remove(q.head_idx());
        let before = q.phys_len();
        q.push_front(entry(9, -1, 10));
        // Reused the tombstoned slot: no column growth, no shift.
        assert_eq!(q.phys_len(), before);
        assert_eq!(q.front().unwrap().job, 9);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn compaction_keeps_live_entries_in_order() {
        let mut q = JobQueue::default();
        q.reset(false);
        for i in 0..200 {
            q.push_back(entry(i, i as i64, 10));
        }
        // Drain 150 heads; compaction must fire once dead slots outnumber
        // live ones (and the 64-slot floor).
        for expect in 0..150 {
            let removed = q.remove(q.head_idx());
            assert_eq!(removed.job, expect);
        }
        assert_eq!(q.len(), 50);
        assert!(
            q.phys_len() < 200,
            "compaction never fired: phys {}",
            q.phys_len()
        );
        assert_eq!(q.front().unwrap().job, 150);
        let seen: Vec<usize> = q.debug_live().map(|(_, e)| e.job).collect();
        assert_eq!(seen, (150..200).collect::<Vec<_>>());
    }

    #[test]
    fn compacting_mode_binary_search_by_seq() {
        let mut q = JobQueue::default();
        q.reset(true);
        q.push_front(entry(0, -1, 5));
        q.push_back(entry(1, 0, 3));
        q.push_back(entry(2, 1, 4));
        assert_eq!(q.index_of_seq(-1), 0);
        assert_eq!(q.index_of_seq(1), 2);
        let removed = q.remove(q.index_of_seq(0));
        assert_eq!(removed.job, 1);
        // Compacting removal shifts: seq 1 now sits at index 1.
        assert_eq!(q.index_of_seq(1), 1);
        assert_eq!(q.phys_len(), 2);
    }

    #[test]
    fn refresh_in_place_keeps_position() {
        let mut q = JobQueue::default();
        q.reset(false);
        q.push_back(entry(0, 0, 10));
        q.push_back(entry(1, 1, 10));
        let mut fresh = entry(1, 1, 99);
        fresh.attempts = 2;
        q.set(1, fresh);
        assert_eq!(q.get(1).attempts, 2);
        assert_eq!(q.get(1).requested_runtime, Time::from_secs(99));
        assert_eq!(q.front().unwrap().job, 0);
    }

    #[test]
    fn dead_slots_reject_through_the_hot_runtime_column() {
        let mut q = JobQueue::default();
        q.reset(false);
        q.push_back(entry(0, 0, 1));
        q.push_back(entry(1, 1, 1));
        q.remove(0);
        let (rts, _, cold) = q.hunt_columns(0);
        assert_eq!(rts[0], Time::MAX);
        assert!(cold[0].dead);
        assert_eq!(rts[1], Time::from_secs(1));
    }
}
