//! Builder-first construction for [`Simulation`].
//!
//! The positional constructors on [`Simulation`] cover the common
//! no-observer case; the builder is the front door once a run needs any
//! combination of configuration, churn schedule, and observers:
//!
//! ```
//! use resmatch_sim::prelude::*;
//! use resmatch_cluster::ClusterBuilder;
//!
//! let cluster = ClusterBuilder::new().pool(16, 32 * 1024).build();
//! let sim = Simulation::builder()
//!     .config(SimConfig::default().with_seed(7))
//!     .cluster(cluster)
//!     .estimator(EstimatorSpec::paper_successive())
//!     .trace_log()
//!     .build()
//!     .unwrap();
//! # let _ = sim;
//! ```

use std::fmt;

use resmatch_cluster::{Cluster, PoolMatcher};
use resmatch_core::ResourceEstimator;

use crate::engine::{ChurnEvent, SimConfig, Simulation};
use crate::observer::{SimObserver, TraceLogObserver};
use crate::spec::EstimatorSpec;

/// Where the builder gets its estimator from.
enum EstimatorSource {
    /// Declarative spec, instantiated against the cluster's capacity
    /// ladder at [`SimulationBuilder::build`] time.
    Spec(EstimatorSpec),
    /// Caller-provided implementation, used as-is.
    Boxed(Box<dyn ResourceEstimator>),
}

/// The simulator crate's workspace-facing error type (formerly
/// `BuildError`). Today every failure mode is a missing builder component;
/// the enum is `#[non_exhaustive]` so later seams (workload validation,
/// churn-schedule checks) can add variants without a breaking release.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// No [`SimulationBuilder::cluster`] call.
    MissingCluster,
    /// Neither [`SimulationBuilder::estimator`] nor
    /// [`SimulationBuilder::boxed_estimator`] was called.
    MissingEstimator,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::MissingCluster => write!(f, "simulation builder: no cluster supplied"),
            SimError::MissingEstimator => {
                write!(
                    f,
                    "simulation builder: no estimator spec or implementation supplied"
                )
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Typed, chainable construction for [`Simulation`].
///
/// Obtain one via [`Simulation::builder`]. `cluster` and an estimator
/// (spec or boxed) are required; everything else defaults to the paper's
/// baseline (default [`SimConfig`], no churn, no observers).
#[must_use = "call .build() to obtain the Simulation"]
pub struct SimulationBuilder {
    cfg: SimConfig,
    cluster: Option<Cluster>,
    estimator: Option<EstimatorSource>,
    churn: Vec<ChurnEvent>,
    observers: Vec<Box<dyn SimObserver>>,
    matchmaking: Option<Box<dyn PoolMatcher>>,
}

impl Default for SimulationBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl SimulationBuilder {
    /// Fresh builder with default [`SimConfig`] and nothing else set.
    pub fn new() -> Self {
        SimulationBuilder {
            cfg: SimConfig::default(),
            cluster: None,
            estimator: None,
            churn: Vec::new(),
            observers: Vec::new(),
            matchmaking: None,
        }
    }

    /// Set the engine configuration (replaces the current one).
    pub fn config(mut self, cfg: SimConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Set the cluster the workload runs against (required).
    pub fn cluster(mut self, cluster: Cluster) -> Self {
        self.cluster = Some(cluster);
        self
    }

    /// Select an estimator by spec; it is instantiated against the
    /// cluster's capacity ladder when [`build`](Self::build) runs.
    /// Replaces any previously set estimator.
    pub fn estimator(mut self, spec: EstimatorSpec) -> Self {
        self.estimator = Some(EstimatorSource::Spec(spec));
        self
    }

    /// Use a caller-provided estimator implementation. Replaces any
    /// previously set estimator.
    pub fn boxed_estimator(mut self, estimator: Box<dyn ResourceEstimator>) -> Self {
        self.estimator = Some(EstimatorSource::Boxed(estimator));
        self
    }

    /// Attach a dynamic-membership schedule (replaces the current one).
    pub fn churn(mut self, churn: Vec<ChurnEvent>) -> Self {
        self.churn = churn;
        self
    }

    /// Attach an observer. May be called repeatedly; observers are
    /// stacked and called in attachment order.
    pub fn observer(mut self, observer: Box<dyn SimObserver>) -> Self {
        self.observers.push(observer);
        self
    }

    /// Sugar for attaching a [`TraceLogObserver`], recording every
    /// scheduling decision into the run's
    /// [`SimResult::trace_log`](crate::metrics::SimResult::trace_log).
    pub fn trace_log(self) -> Self {
        self.observer(Box::new(TraceLogObserver::new()))
    }

    /// Attach a matchmaking layer (see
    /// [`Simulation::with_matchmaking`]). Replaces any previously set
    /// matcher; the default is the legacy capacity-only path.
    pub fn matchmaking(mut self, matcher: Box<dyn PoolMatcher>) -> Self {
        self.matchmaking = Some(matcher);
        self
    }

    /// Assemble the [`Simulation`].
    ///
    /// # Errors
    /// [`SimError::MissingCluster`] or [`SimError::MissingEstimator`]
    /// when a required component was never supplied.
    pub fn build(self) -> Result<Simulation, SimError> {
        let cluster = self.cluster.ok_or(SimError::MissingCluster)?;
        let sim = match self.estimator.ok_or(SimError::MissingEstimator)? {
            EstimatorSource::Spec(spec) => Simulation::new(self.cfg, cluster, spec),
            EstimatorSource::Boxed(est) => Simulation::from_parts(self.cfg, cluster, est),
        };
        let mut sim = sim.with_churn(self.churn);
        if let Some(matcher) = self.matchmaking {
            sim = sim.with_matchmaking(matcher);
        }
        Ok(self
            .observers
            .into_iter()
            .fold(sim, Simulation::with_observer))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resmatch_cluster::ClusterBuilder;

    fn cluster() -> Cluster {
        ClusterBuilder::new().pool(4, 32 * 1024).build()
    }

    #[test]
    fn missing_parts_are_reported() {
        assert_eq!(
            Simulation::builder().build().err(),
            Some(SimError::MissingCluster)
        );
        assert_eq!(
            Simulation::builder().cluster(cluster()).build().err(),
            Some(SimError::MissingEstimator)
        );
        let msg = SimError::MissingEstimator.to_string();
        assert!(msg.contains("estimator"), "{msg}");
    }

    #[test]
    fn full_chain_builds() {
        let sim = Simulation::builder()
            .config(SimConfig::default().with_seed(3))
            .cluster(cluster())
            .estimator(EstimatorSpec::PassThrough)
            .churn(vec![])
            .trace_log()
            .build();
        assert!(sim.is_ok());
    }
}
