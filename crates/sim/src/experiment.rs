//! Experiment drivers: offered-load sweeps (Figures 5 and 6) and
//! cluster-heterogeneity sweeps (Figure 8).
//!
//! Sweep points are embarrassingly parallel — each is its own deterministic
//! simulation — so they run on a bounded worker pool sized to the machine
//! (`std::thread::available_parallelism`), not one OS thread per point: a
//! 100-point sweep on an 8-core box runs 8 workers pulling points off a
//! shared atomic counter. The trace is shared by reference through
//! `std::thread::scope` (no per-thread clone, no `Arc` bookkeeping needed).
//! Determinism is preserved because every simulation owns its RNG seeded
//! from the experiment seed, and results are collected by slot, not by
//! completion order.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

use resmatch_cluster::builder::paper_cluster;
use resmatch_cluster::Cluster;
use resmatch_workload::load::scale_to_load_into;
use resmatch_workload::Workload;

use crate::csv::{float, CsvWriter};
use crate::engine::{SimArena, SimConfig, Simulation};
use crate::metrics::SimResult;
use crate::observer::SweepObserver;
use crate::spec::EstimatorSpec;

/// Run `count` independent tasks on a bounded worker pool and return their
/// results in index order.
///
/// Workers claim task indices from a shared atomic counter, so the pool
/// stays busy even when point costs are skewed (high-load points simulate
/// far more contention than low-load ones). The pool size is capped at
/// `available_parallelism`; a single-core box degrades to a serial loop
/// with no thread spawns at all.
///
/// This is the pool behind [`run_load_sweep`] and [`run_cluster_sweep`];
/// it is public so other drivers (the `resmatch-repro` experiment runner)
/// can reuse the same bounded-parallelism discipline for their own
/// embarrassingly parallel task sets. `task` must be deterministic per
/// index — results are collected by slot, never by completion order.
///
/// # Panics
/// If a worker thread panics, the panic propagates out of the enclosing
/// `thread::scope` (and the every-slot-filled invariant check fires only
/// in that already-panicking case).
pub fn run_pooled<T, F>(count: usize, task: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_pooled_with(count, || (), |(), i| task(i))
}

/// [`run_pooled`] with per-worker scratch state: each worker builds one
/// context via `init` when it starts and threads it through every task it
/// claims. This is how sweeps reuse a [`crate::engine::SimArena`] (and a
/// rescale buffer) across points — the allocations of the first point a
/// worker runs are recycled by all its later points instead of being
/// re-made per point.
///
/// The context never crosses threads, so `C` only needs `Send` (it is
/// created on the worker); determinism is unaffected because contexts
/// carry buffers, not results, and every simulation still owns its seeded
/// RNG.
///
/// # Panics
/// As [`run_pooled`]: worker panics propagate out of the enclosing scope.
pub fn run_pooled_with<C, T, I, F>(count: usize, init: I, task: F) -> Vec<T>
where
    C: Send,
    T: Send,
    I: Fn() -> C + Sync,
    F: Fn(&mut C, usize) -> T + Sync,
{
    if count == 0 {
        return Vec::new();
    }
    let workers = std::thread::available_parallelism()
        .map_or(1, std::num::NonZeroUsize::get)
        .min(count);
    let mut slots: Vec<Option<T>> = (0..count).map(|_| None).collect();
    if workers <= 1 {
        let mut ctx = init();
        for (i, slot) in slots.iter_mut().enumerate() {
            *slot = Some(task(&mut ctx, i));
        }
    } else {
        let next = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let tx = tx.clone();
                let (next, init, task) = (&next, &init, &task);
                scope.spawn(move || {
                    let mut ctx = init();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= count {
                            break;
                        }
                        if tx.send((i, task(&mut ctx, i))).is_err() {
                            break;
                        }
                    }
                });
            }
            drop(tx);
            for (i, value) in rx {
                slots[i] = Some(value);
            }
        });
    }
    slots
        .into_iter()
        .map(|s| s.expect("invariant: the worker pool fills every slot before the scope exits"))
        .collect()
}

/// Configuration for a load sweep.
///
/// Construct via `Default` plus the chained `with_*` setters; the struct
/// is `#[non_exhaustive]` so future knobs are not semver breaks:
///
/// ```
/// use resmatch_sim::prelude::*;
/// let cfg = SweepConfig::default()
///     .with_sim(SimConfig::default().with_seed(7))
///     .with_loads(vec![0.5, 1.0]);
/// assert_eq!(cfg.loads.len(), 2);
/// ```
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct SweepConfig {
    /// Engine configuration shared by all points.
    pub sim: SimConfig,
    /// Offered loads to evaluate (e.g. 0.3 ..= 1.5).
    pub loads: Vec<f64>,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            sim: SimConfig::default(),
            loads: vec![0.3, 0.45, 0.6, 0.75, 0.9, 1.05, 1.2],
        }
    }
}

impl SweepConfig {
    /// Set the engine configuration shared by all points.
    pub fn with_sim(mut self, sim: SimConfig) -> Self {
        self.sim = sim;
        self
    }

    /// Set the offered loads to evaluate.
    pub fn with_loads(mut self, loads: Vec<f64>) -> Self {
        self.loads = loads;
        self
    }
}

/// One point of a load sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadPoint {
    /// Offered load the trace was rescaled to.
    pub offered_load: f64,
    /// Simulation outcome.
    pub result: SimResult,
}

/// Run `estimator` over all loads in `cfg`, one simulation per point, on
/// the bounded worker pool. Points come back in `cfg.loads` order.
pub fn run_load_sweep(
    workload: &Workload,
    cluster: &Cluster,
    estimator: EstimatorSpec,
    cfg: &SweepConfig,
) -> Vec<LoadPoint> {
    run_load_sweep_observed(workload, cluster, estimator, cfg, None)
}

/// [`run_load_sweep`] with an observer: each point's simulation gets the
/// engine-level observer [`SweepObserver::point_observer`] builds for it
/// (attached from the worker thread that claims the point), and
/// [`SweepObserver::on_point_complete`] fires as each point finishes —
/// live progress and counters stream while later points are still
/// running.
pub fn run_load_sweep_observed(
    workload: &Workload,
    cluster: &Cluster,
    estimator: EstimatorSpec,
    cfg: &SweepConfig,
    observer: Option<&dyn SweepObserver>,
) -> Vec<LoadPoint> {
    let total = cfg.loads.len();
    run_pooled_with(
        total,
        || (SimArena::default(), Vec::new()),
        |(arena, buf), i| {
            let load = cfg.loads[i];
            // Rescale into the worker's buffer and round-trip it through a
            // `Workload` so a sweep allocates one trace-sized vector per
            // worker, not per point.
            scale_to_load_into(workload, cluster.total_nodes(), load, buf);
            let scaled = Workload::from_sorted(std::mem::take(buf));
            let mut sim = Simulation::new(cfg.sim, cluster.clone(), estimator);
            if let Some(obs) = observer.and_then(|o| o.point_observer(i)) {
                sim = sim.with_observer(obs);
            }
            let result = sim.run_with_arena(&scaled, arena);
            *buf = scaled.into_jobs();
            if let Some(o) = observer {
                o.on_point_complete(i, total, &result);
            }
            LoadPoint {
                offered_load: load,
                result,
            }
        },
    )
}

/// One point of the Figure 8 cluster sweep: the paper's 512×32 MB +
/// 512×`m` MB cluster evaluated with and without estimation.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSweepPoint {
    /// Memory of the second pool, MB.
    pub second_pool_mb: u64,
    /// Without estimation (pass-through).
    pub baseline: SimResult,
    /// With the estimator under test.
    pub estimated: SimResult,
}

impl ClusterSweepPoint {
    /// Figure 8's y-axis: utilization with estimation over utilization
    /// without. 1.0 when the baseline achieved nothing (degenerate).
    pub fn utilization_ratio(&self) -> f64 {
        let base = self.baseline.utilization();
        if base <= 0.0 {
            1.0
        } else {
            self.estimated.utilization() / base
        }
    }
}

/// Run the Figure 8 sweep: for each second-pool size, simulate the trace at
/// `offered_load` (a saturating load measures the plateau) with and without
/// estimation. Points run on the bounded worker pool and return in input
/// order.
pub fn run_cluster_sweep(
    workload: &Workload,
    second_pool_mbs: &[u64],
    estimator: EstimatorSpec,
    sim: SimConfig,
    offered_load: f64,
) -> Vec<ClusterSweepPoint> {
    run_cluster_sweep_observed(
        workload,
        second_pool_mbs,
        estimator,
        sim,
        offered_load,
        None,
    )
}

/// [`run_cluster_sweep`] with an observer. Both simulations of a point
/// (pass-through baseline, then estimated) get their own engine-level
/// observer from [`SweepObserver::point_observer`];
/// [`SweepObserver::on_point_complete`] fires once per point with the
/// *estimated* result.
pub fn run_cluster_sweep_observed(
    workload: &Workload,
    second_pool_mbs: &[u64],
    estimator: EstimatorSpec,
    sim: SimConfig,
    offered_load: f64,
    observer: Option<&dyn SweepObserver>,
) -> Vec<ClusterSweepPoint> {
    let total = second_pool_mbs.len();
    run_pooled_with(
        total,
        || (SimArena::default(), Vec::new()),
        |(arena, buf), i| {
            let mb = second_pool_mbs[i];
            let cluster = paper_cluster(mb);
            // One scaled workload per point, shared by the baseline/estimated
            // pair — rescaling a 100k-job trace twice would double the sweep's
            // allocation traffic for identical bytes.
            scale_to_load_into(workload, cluster.total_nodes(), offered_load, buf);
            let scaled = Workload::from_sorted(std::mem::take(buf));
            let mut base_sim = Simulation::new(sim, cluster.clone(), EstimatorSpec::PassThrough);
            if let Some(obs) = observer.and_then(|o| o.point_observer(i)) {
                base_sim = base_sim.with_observer(obs);
            }
            let baseline = base_sim.run_with_arena(&scaled, arena);
            let mut est_sim = Simulation::new(sim, cluster, estimator);
            if let Some(obs) = observer.and_then(|o| o.point_observer(i)) {
                est_sim = est_sim.with_observer(obs);
            }
            let estimated = est_sim.run_with_arena(&scaled, arena);
            *buf = scaled.into_jobs();
            if let Some(o) = observer {
                o.on_point_complete(i, total, &estimated);
            }
            ClusterSweepPoint {
                second_pool_mb: mb,
                baseline,
                estimated,
            }
        },
    )
}

/// Render a load sweep as CSV (one row per point) for external plotting.
///
/// Columns and rows go through [`crate::csv::CsvWriter`], so every row is
/// checked against the header's column count and floats are rendered
/// locale-safely (always a `.` decimal separator).
pub fn load_sweep_csv(points: &[LoadPoint]) -> String {
    let mut w = CsvWriter::new(&[
        "offered_load",
        "utilization",
        "busy_utilization",
        "mean_slowdown",
        "mean_bounded_slowdown",
        "mean_wait_s",
        "failed_execution_fraction",
        "lowered_job_fraction",
        "completed_jobs",
    ]);
    for p in points {
        let r = &p.result;
        w.row([
            float(p.offered_load),
            float(r.utilization()),
            float(r.busy_utilization()),
            float(r.mean_slowdown()),
            float(r.mean_bounded_slowdown()),
            float(r.mean_wait_s()),
            float(r.failed_execution_fraction()),
            float(r.lowered_job_fraction()),
            r.completed_jobs.to_string(),
        ]);
    }
    w.finish()
}

/// Render a cluster sweep as CSV (one row per second-pool size), with the
/// same header/row-alignment and float-formatting guarantees as
/// [`load_sweep_csv`].
pub fn cluster_sweep_csv(points: &[ClusterSweepPoint]) -> String {
    let mut w = CsvWriter::new(&[
        "second_pool_mb",
        "baseline_utilization",
        "estimated_utilization",
        "utilization_ratio",
        "benefiting_node_count",
        "failed_execution_fraction",
        "lowered_job_fraction",
    ]);
    for p in points {
        w.row([
            p.second_pool_mb.to_string(),
            float(p.baseline.utilization()),
            float(p.estimated.utilization()),
            float(p.utilization_ratio()),
            p.estimated.benefiting_node_count().to_string(),
            float(p.estimated.failed_execution_fraction()),
            float(p.estimated.lowered_job_fraction()),
        ]);
    }
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use resmatch_cluster::ClusterBuilder;
    use resmatch_workload::load::scale_to_load;
    use resmatch_workload::synthetic::{generate, Cm5Config};

    const MB: u64 = 1024;

    fn small_trace(jobs: usize) -> Workload {
        let mut w = generate(
            &Cm5Config {
                jobs,
                ..Cm5Config::default()
            },
            42,
        );
        w.retain_max_nodes(512);
        w
    }

    fn small_cluster() -> Cluster {
        ClusterBuilder::new()
            .pool(512, 32 * MB)
            .pool(512, 24 * MB)
            .build()
    }

    #[test]
    fn load_sweep_returns_points_in_order() {
        let trace = small_trace(300);
        let cfg = SweepConfig {
            loads: vec![0.4, 0.8],
            ..SweepConfig::default()
        };
        let points = run_load_sweep(&trace, &small_cluster(), EstimatorSpec::PassThrough, &cfg);
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].offered_load, 0.4);
        assert_eq!(points[1].offered_load, 0.8);
        for p in &points {
            assert!(p.result.completed_jobs > 0);
        }
    }

    #[test]
    fn utilization_grows_with_load_until_saturation() {
        let trace = small_trace(800);
        let cfg = SweepConfig {
            loads: vec![0.2, 0.6, 1.2],
            ..SweepConfig::default()
        };
        let points = run_load_sweep(
            &trace,
            &small_cluster(),
            EstimatorSpec::paper_successive(),
            &cfg,
        );
        let utils: Vec<f64> = points.iter().map(|p| p.result.utilization()).collect();
        assert!(
            utils[1] > utils[0],
            "utilization must grow in the linear region: {utils:?}"
        );
    }

    #[test]
    fn parallel_sweep_matches_serial() {
        let trace = small_trace(200);
        let cluster = small_cluster();
        let cfg = SweepConfig {
            loads: vec![0.5, 1.0],
            ..SweepConfig::default()
        };
        let parallel = run_load_sweep(&trace, &cluster, EstimatorSpec::PassThrough, &cfg);
        // Serial reference.
        for (i, &load) in cfg.loads.iter().enumerate() {
            let scaled = scale_to_load(&trace, cluster.total_nodes(), load);
            let serial =
                Simulation::new(cfg.sim, cluster.clone(), EstimatorSpec::PassThrough).run(&scaled);
            assert_eq!(parallel[i].result, serial, "point {i} diverged");
        }
    }

    #[test]
    fn csv_exports_are_well_formed() {
        let trace = small_trace(150);
        let cfg = SweepConfig {
            loads: vec![0.5, 1.0],
            ..SweepConfig::default()
        };
        let load_points =
            run_load_sweep(&trace, &small_cluster(), EstimatorSpec::PassThrough, &cfg);
        let csv = load_sweep_csv(&load_points);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3, "header + one row per point");
        let cols = lines[0].split(',').count();
        assert!(lines[1..].iter().all(|l| l.split(',').count() == cols));

        let cluster_points = run_cluster_sweep(
            &trace,
            &[24, 32],
            EstimatorSpec::paper_successive(),
            SimConfig::default(),
            1.0,
        );
        let csv = cluster_sweep_csv(&cluster_points);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[1].starts_with("24,"));
        assert!(lines[2].starts_with("32,"));
        let cols = lines[0].split(',').count();
        for line in &lines[1..] {
            assert_eq!(
                line.split(',').count(),
                cols,
                "row/header column mismatch in {line:?}"
            );
            assert!(!line.contains("NaN"), "unexpected NaN cell in {line:?}");
        }
    }

    #[test]
    fn cluster_sweep_homogeneous_extreme_is_neutral() {
        let trace = small_trace(400);
        let points = run_cluster_sweep(
            &trace,
            &[32],
            EstimatorSpec::paper_successive(),
            SimConfig::default(),
            1.2,
        );
        // All machines identical: estimation cannot enlarge any candidate
        // set, so the ratio sits at 1 (allowing failure-probe noise).
        let ratio = points[0].utilization_ratio();
        assert!(
            (ratio - 1.0).abs() < 0.05,
            "homogeneous cluster ratio {ratio}"
        );
    }
}
