//! Simulation outcomes and the paper's evaluation metrics.
//!
//! Definitions follow Feitelson's metrics survey, which the paper cites:
//! *utilization* is useful (goodput) node-seconds over available
//! node-seconds across the makespan; *slowdown* is the job's wait time plus
//! execution time, divided by execution time (Figure 6's measure — "one
//! possible analogy of slowdown is latency in a network"); the *saturation
//! point* is where utilization's linear growth in offered load stops
//! (Frachtenberg & Feitelson's pitfalls paper, cited for Figure 5's
//! comparison points).

use resmatch_workload::{JobId, Time};
use serde::{Deserialize, Serialize};

/// Per-job outcome of a simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobRecord {
    /// Which job.
    pub id: JobId,
    /// Submission time.
    pub submit: Time,
    /// Start of the final (successful) execution.
    pub final_start: Time,
    /// Completion time.
    pub completion: Time,
    /// The job's execution duration.
    pub runtime: Time,
    /// Nodes the job ran on.
    pub nodes: u32,
    /// Executions that died from under-provisioning (or injected faults)
    /// before the job finally completed.
    pub failed_executions: u32,
    /// True when the final execution was granted a demand strictly below
    /// the user request (the paper's "successfully submitted for execution
    /// with lower estimated resources").
    pub lowered: bool,
    /// True when estimation strictly enlarged the job's candidate-machine
    /// set for its final execution — the job class Figure 8's analysis
    /// counts.
    pub benefited: bool,
    /// Node-seconds burned by this job's failed executions.
    pub wasted_node_seconds: f64,
}

impl JobRecord {
    /// Queue wait before the final execution.
    pub fn wait(&self) -> Time {
        self.final_start.saturating_sub(self.submit)
    }

    /// The paper's slowdown: (wait + runtime) / runtime.
    pub fn slowdown(&self) -> f64 {
        let run = self.runtime.as_secs_f64();
        if run <= 0.0 {
            return 1.0;
        }
        (self.wait().as_secs_f64() + run) / run
    }

    /// Bounded slowdown with threshold `tau` seconds: short jobs do not
    /// blow the metric up (Feitelson's recommendation; τ = 10 s customary).
    pub fn bounded_slowdown(&self, tau_s: f64) -> f64 {
        let run = self.runtime.as_secs_f64();
        let denom = run.max(tau_s);
        if denom <= 0.0 {
            return 1.0;
        }
        (((self.wait().as_secs_f64() + run) / denom).max(1.0)).max(1.0)
    }
}

/// Deterministic event counters for one run, tracked by the engine
/// whether or not an observer is attached.
///
/// Every field is a pure function of the (seeded) simulation, so counters
/// compare equal across repeated runs and across observed/unobserved runs
/// of the same scenario. Wall-clock measurements live in
/// [`CountersObserver`](crate::observer::CountersObserver) instead, keeping
/// this struct byte-stable.
#[non_exhaustive]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct RunCounters {
    /// Jobs whose arrival event fired (excludes up-front drops).
    pub arrivals: u64,
    /// Queue admissions: first submissions plus requeues after failures.
    pub admissions: u64,
    /// Executions started (scheduled onto nodes).
    pub started: u64,
    /// Executions that completed successfully.
    pub completed: u64,
    /// Executions that died (under-provisioning or injected fault).
    pub failed: u64,
    /// Failed executions that returned to the head of the queue.
    pub requeued: u64,
    /// Admissions that bypassed the estimator and submitted the raw user
    /// request (the engine's backoff after `max_estimation_attempts`).
    pub estimator_bypassed: u64,
    /// Cluster membership changes applied.
    pub churn_events: u64,
    /// Matchmaking mode only: allocation attempts that reached the
    /// matchmaker (past the free-bound gate); zero in native mode.
    pub match_attempts: u64,
    /// Matchmaking mode only: matchmaker attempts the allocator refused
    /// (the free bound over-approximated after an earlier start in the
    /// same epoch).
    pub match_refusals: u64,
}

/// Aggregate outcome of one simulation run.
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimResult {
    /// Estimator that produced this result.
    pub estimator: String,
    /// Per-job records for completed jobs.
    pub records: Vec<JobRecord>,
    /// Jobs that completed.
    pub completed_jobs: usize,
    /// Jobs dropped because even their full request can never be satisfied
    /// by the cluster (e.g. 1024-node jobs on a 512-node-per-pool split).
    pub dropped_jobs: usize,
    /// Total executions started (completions + failures).
    pub total_executions: u64,
    /// Executions that failed.
    pub failed_executions: u64,
    /// Discrete events processed by the engine (arrivals + execution ends +
    /// churn). The throughput denominator for benchmarking: events/second
    /// is makespan-independent, unlike jobs/second under retries.
    pub events_processed: u64,
    /// Total cluster size.
    pub total_nodes: u32,
    /// First submission.
    pub first_submit: Time,
    /// Last completion.
    pub last_completion: Time,
    /// Node-seconds of successfully completed work.
    pub goodput_node_seconds: f64,
    /// Node-seconds burned by failed executions.
    pub wasted_node_seconds: f64,
    /// Per-decision log; empty unless a
    /// [`TraceLogObserver`](crate::observer::TraceLogObserver) was attached
    /// (e.g. via the builder's `.trace_log()` sugar).
    pub trace_log: crate::tracelog::TraceLog,
    /// Deterministic event counters (always tracked; see [`RunCounters`]).
    pub counters: RunCounters,
    /// Time-weighted mean queue length over the run — the quantity the
    /// paper's Figure 6 explanation turns on ("the 60% load is a point at
    /// which the job queue is still not extremely long").
    pub mean_queue_length: f64,
    /// Time-weighted mean busy node count.
    pub mean_busy_nodes: f64,
    /// Per-pool occupancy: the paper's whole mechanism is visible here —
    /// without estimation the small-memory pool idles while the queue
    /// backs up behind the big one.
    pub pool_stats: Vec<PoolStats>,
}

/// Time-weighted occupancy of one capacity pool.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PoolStats {
    /// Pool node memory, KB.
    pub mem_kb: u64,
    /// Nodes in the pool.
    pub nodes: u32,
    /// Time-weighted mean fraction of the pool that was busy.
    pub mean_busy_fraction: f64,
}

impl SimResult {
    /// Makespan: first submission to last completion.
    pub fn makespan(&self) -> Time {
        self.last_completion.saturating_sub(self.first_submit)
    }

    /// Goodput utilization — the paper's Figure 5 quantity.
    pub fn utilization(&self) -> f64 {
        let span = self.makespan().as_secs_f64();
        if span <= 0.0 || self.total_nodes == 0 {
            return 0.0;
        }
        self.goodput_node_seconds / (self.total_nodes as f64 * span)
    }

    /// Utilization counting wasted (failed-execution) time as busy.
    pub fn busy_utilization(&self) -> f64 {
        let span = self.makespan().as_secs_f64();
        if span <= 0.0 || self.total_nodes == 0 {
            return 0.0;
        }
        (self.goodput_node_seconds + self.wasted_node_seconds) / (self.total_nodes as f64 * span)
    }

    /// Mean slowdown over completed jobs.
    pub fn mean_slowdown(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records.iter().map(JobRecord::slowdown).sum::<f64>() / self.records.len() as f64
    }

    /// Mean bounded slowdown (τ = 10 s).
    pub fn mean_bounded_slowdown(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records
            .iter()
            .map(|r| r.bounded_slowdown(10.0))
            .sum::<f64>()
            / self.records.len() as f64
    }

    /// Mean queue wait in seconds.
    pub fn mean_wait_s(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records
            .iter()
            .map(|r| r.wait().as_secs_f64())
            .sum::<f64>()
            / self.records.len() as f64
    }

    /// Completed jobs per hour of makespan.
    pub fn throughput_per_hour(&self) -> f64 {
        let span = self.makespan().as_secs_f64();
        if span <= 0.0 {
            return 0.0;
        }
        self.completed_jobs as f64 / (span / 3600.0)
    }

    /// Fraction of executions that failed — the paper reports at most
    /// ~0.01% across its configurations.
    pub fn failed_execution_fraction(&self) -> f64 {
        if self.total_executions == 0 {
            return 0.0;
        }
        self.failed_executions as f64 / self.total_executions as f64
    }

    /// Fraction of jobs whose final execution ran with a lowered estimate —
    /// the paper reports 15%–40%.
    pub fn lowered_job_fraction(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records.iter().filter(|r| r.lowered).count() as f64 / self.records.len() as f64
    }

    /// Total node count over jobs that benefited from estimation — the
    /// quantity the paper finds linearly predicts utilization improvement
    /// (Figure 8, R² = 0.991).
    pub fn benefiting_node_count(&self) -> u64 {
        self.records
            .iter()
            .filter(|r| r.benefited)
            .map(|r| r.nodes as u64)
            .sum()
    }
}

/// The saturation utilization of a load sweep: the plateau where linear
/// growth has stopped. With goodput utilization this is simply the maximum
/// achieved value across offered loads.
pub fn saturation_utilization(utilizations: &[f64]) -> f64 {
    utilizations.iter().copied().fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(submit_s: u64, start_s: u64, run_s: u64) -> JobRecord {
        JobRecord {
            id: JobId(1),
            submit: Time::from_secs(submit_s),
            final_start: Time::from_secs(start_s),
            completion: Time::from_secs(start_s + run_s),
            runtime: Time::from_secs(run_s),
            nodes: 4,
            failed_executions: 0,
            lowered: false,
            benefited: false,
            wasted_node_seconds: 0.0,
        }
    }

    #[test]
    fn slowdown_definition() {
        // Wait 30 s, run 10 s → (30+10)/10 = 4.
        let r = record(0, 30, 10);
        assert!((r.slowdown() - 4.0).abs() < 1e-12);
        // No wait → slowdown 1.
        assert!((record(5, 5, 10).slowdown() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bounded_slowdown_caps_short_jobs() {
        // Wait 100 s, run 1 s: raw slowdown 101, bounded (τ=10) = 101/10.
        let r = record(0, 100, 1);
        assert!((r.slowdown() - 101.0).abs() < 1e-9);
        assert!((r.bounded_slowdown(10.0) - 10.1).abs() < 1e-9);
        // Never below 1.
        assert!(record(0, 0, 1).bounded_slowdown(10.0) >= 1.0);
    }

    fn result(records: Vec<JobRecord>) -> SimResult {
        let last = records
            .iter()
            .map(|r| r.completion)
            .max()
            .unwrap_or(Time::ZERO);
        let good = records
            .iter()
            .map(|r| r.nodes as f64 * r.runtime.as_secs_f64())
            .sum();
        SimResult {
            estimator: "test".into(),
            completed_jobs: records.len(),
            dropped_jobs: 0,
            total_executions: records.len() as u64,
            failed_executions: 0,
            events_processed: records.len() as u64 * 2,
            total_nodes: 8,
            first_submit: Time::ZERO,
            last_completion: last,
            goodput_node_seconds: good,
            wasted_node_seconds: 0.0,
            records,
            trace_log: crate::tracelog::TraceLog::default(),
            counters: RunCounters::default(),
            mean_queue_length: 0.0,
            mean_busy_nodes: 0.0,
            pool_stats: Vec::new(),
        }
    }

    #[test]
    fn utilization_accounting() {
        // Two jobs of 4 nodes x 10 s on an 8-node cluster over 20 s.
        let r = result(vec![record(0, 0, 10), record(0, 10, 10)]);
        assert_eq!(r.makespan(), Time::from_secs(20));
        assert!((r.utilization() - 80.0 / 160.0).abs() < 1e-12);
        assert_eq!(r.busy_utilization(), r.utilization());
    }

    #[test]
    fn wasted_time_separates_goodput_from_busy() {
        let mut r = result(vec![record(0, 0, 10)]);
        r.wasted_node_seconds = 40.0;
        assert!((r.utilization() - 40.0 / 80.0).abs() < 1e-12);
        assert!((r.busy_utilization() - 80.0 / 80.0).abs() < 1e-12);
    }

    #[test]
    fn aggregate_means() {
        let r = result(vec![record(0, 30, 10), record(0, 0, 10)]);
        assert!((r.mean_slowdown() - 2.5).abs() < 1e-12); // (4 + 1) / 2
        assert!((r.mean_wait_s() - 15.0).abs() < 1e-12);
    }

    #[test]
    fn empty_result_is_safe() {
        let r = result(vec![]);
        assert_eq!(r.utilization(), 0.0);
        assert_eq!(r.mean_slowdown(), 0.0);
        assert_eq!(r.failed_execution_fraction(), 0.0);
        assert_eq!(r.lowered_job_fraction(), 0.0);
        assert_eq!(r.benefiting_node_count(), 0);
    }

    #[test]
    fn conservativeness_counters() {
        let mut records = vec![record(0, 0, 10), record(0, 5, 10)];
        records[0].lowered = true;
        records[0].benefited = true;
        let mut r = result(records);
        r.total_executions = 200;
        r.failed_executions = 1;
        assert!((r.lowered_job_fraction() - 0.5).abs() < 1e-12);
        assert!((r.failed_execution_fraction() - 0.005).abs() < 1e-12);
        assert_eq!(r.benefiting_node_count(), 4);
    }

    #[test]
    fn saturation_is_the_plateau_maximum() {
        assert_eq!(saturation_utilization(&[0.2, 0.4, 0.55, 0.54, 0.55]), 0.55);
        assert_eq!(saturation_utilization(&[]), 0.0);
    }
}
