//! Declarative estimator selection.
//!
//! Experiments describe *which* estimator to run as data rather than code so
//! sweeps can clone configurations across threads and report tables can name
//! their rows. [`EstimatorSpec::build`] instantiates the estimator against a
//! concrete cluster's capacity ladder.

use resmatch_cluster::CapacityLadder;
use resmatch_core::adaptive::{AdaptiveConfig, AdaptiveSimilarity};
use resmatch_core::last_instance::{LastInstance, LastInstanceConfig};
use resmatch_core::multi::{MultiResourceConfig, MultiResourceEstimator};
use resmatch_core::quantile::{QuantileConfig, QuantileEstimator};
use resmatch_core::regression::{RegressionConfig, RegressionEstimator};
use resmatch_core::reinforcement::{ReinforcementConfig, ReinforcementEstimator};
use resmatch_core::robust::{RobustBisection, RobustConfig};
use resmatch_core::successive::{SuccessiveApproximation, SuccessiveConfig};
use resmatch_core::warm_start::{WarmStartConfig, WarmStartEstimator};
use resmatch_core::{Oracle, PassThrough, ResourceEstimator};

/// Every estimator the workspace provides, with its configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EstimatorSpec {
    /// No estimation (the conventional scheduler).
    PassThrough,
    /// Perfect knowledge of actual usage.
    Oracle,
    /// Algorithm 1 (implicit feedback + similarity groups).
    Successive(SuccessiveConfig),
    /// Last-instance identification (explicit feedback + similarity).
    LastInstance(LastInstanceConfig),
    /// Linear regression on request features (explicit, no similarity).
    Regression(RegressionConfig),
    /// Contextual-bandit RL (implicit, no similarity).
    Reinforcement(ReinforcementConfig),
    /// Robust direct-search bisection (§2.3 extension).
    Robust(RobustConfig),
    /// Multi-resource coordinate descent (§2.3 extension).
    MultiResource(MultiResourceConfig),
    /// Quantile-of-window estimation (explicit feedback + similarity, with
    /// a risk dial).
    Quantile(QuantileConfig),
    /// Hierarchical online similarity refinement (§4 future work).
    Adaptive(AdaptiveConfig),
    /// Regression-seeded successive approximation (§4 future work). Built
    /// untrained; it arms its prior from explicit feedback online (run it
    /// under [`crate::engine::FeedbackMode::Explicit`]).
    WarmStart(WarmStartConfig),
}

impl EstimatorSpec {
    /// Algorithm 1 with the paper's experimental settings (α = 2, β = 0).
    pub fn paper_successive() -> Self {
        EstimatorSpec::Successive(SuccessiveConfig::default())
    }

    /// Instantiate for a cluster with the given capacity ladder.
    pub fn build(&self, ladder: &CapacityLadder) -> Box<dyn ResourceEstimator> {
        match *self {
            EstimatorSpec::PassThrough => Box::new(PassThrough),
            EstimatorSpec::Oracle => Box::new(Oracle),
            EstimatorSpec::Successive(cfg) => {
                Box::new(SuccessiveApproximation::new(cfg, ladder.clone()))
            }
            EstimatorSpec::LastInstance(cfg) => Box::new(LastInstance::new(cfg)),
            EstimatorSpec::Regression(cfg) => Box::new(RegressionEstimator::new(cfg)),
            EstimatorSpec::Reinforcement(cfg) => Box::new(ReinforcementEstimator::new(cfg)),
            EstimatorSpec::Robust(cfg) => Box::new(RobustBisection::new(cfg)),
            EstimatorSpec::MultiResource(cfg) => {
                Box::new(MultiResourceEstimator::new(cfg, ladder.clone()))
            }
            EstimatorSpec::Quantile(cfg) => Box::new(QuantileEstimator::new(cfg)),
            EstimatorSpec::Adaptive(cfg) => Box::new(AdaptiveSimilarity::new(cfg, ladder.clone())),
            EstimatorSpec::WarmStart(cfg) => Box::new(WarmStartEstimator::new(cfg, ladder.clone())),
        }
    }

    /// Human-readable name matching the built estimator's `name()`.
    pub fn name(&self) -> &'static str {
        match self {
            EstimatorSpec::PassThrough => "pass-through",
            EstimatorSpec::Oracle => "oracle",
            EstimatorSpec::Successive(_) => "successive-approximation",
            EstimatorSpec::LastInstance(_) => "last-instance",
            EstimatorSpec::Regression(_) => "regression",
            EstimatorSpec::Reinforcement(_) => "reinforcement-learning",
            EstimatorSpec::Robust(_) => "robust-bisection",
            EstimatorSpec::MultiResource(_) => "multi-resource",
            EstimatorSpec::Quantile(_) => "quantile",
            EstimatorSpec::Adaptive(_) => "adaptive-similarity",
            EstimatorSpec::WarmStart(_) => "warm-start-successive",
        }
    }

    /// Whether this estimator needs explicit (measured-usage) feedback to
    /// function as designed.
    pub fn wants_explicit_feedback(&self) -> bool {
        matches!(
            self,
            EstimatorSpec::LastInstance(_)
                | EstimatorSpec::Regression(_)
                | EstimatorSpec::WarmStart(_)
                | EstimatorSpec::Quantile(_)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ladder() -> CapacityLadder {
        CapacityLadder::new(vec![32 * 1024, 24 * 1024])
    }

    #[test]
    fn every_spec_builds_and_names_consistently() {
        let specs = [
            EstimatorSpec::PassThrough,
            EstimatorSpec::Oracle,
            EstimatorSpec::paper_successive(),
            EstimatorSpec::LastInstance(LastInstanceConfig::default()),
            EstimatorSpec::Regression(RegressionConfig::default()),
            EstimatorSpec::Reinforcement(ReinforcementConfig::default()),
            EstimatorSpec::Robust(RobustConfig::default()),
            EstimatorSpec::MultiResource(MultiResourceConfig::default()),
            EstimatorSpec::Quantile(QuantileConfig::default()),
            EstimatorSpec::Adaptive(AdaptiveConfig::default()),
            EstimatorSpec::WarmStart(WarmStartConfig::default()),
        ];
        for spec in specs {
            let built = spec.build(&ladder());
            assert_eq!(built.name(), spec.name());
        }
    }

    #[test]
    fn explicit_feedback_flags() {
        assert!(
            EstimatorSpec::LastInstance(LastInstanceConfig::default()).wants_explicit_feedback()
        );
        assert!(EstimatorSpec::Regression(RegressionConfig::default()).wants_explicit_feedback());
        assert!(!EstimatorSpec::paper_successive().wants_explicit_feedback());
        assert!(!EstimatorSpec::PassThrough.wants_explicit_feedback());
    }
}
