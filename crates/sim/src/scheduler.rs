//! Scheduling policies and reservation arithmetic.
//!
//! The paper evaluates with strict FCFS ("we used first-come-first-served as
//! the scheduling policy ... we expect that the results with more aggressive
//! scheduling policies like backfilling will be correlated") — this module
//! adds EASY backfilling and shortest-job-first so that expectation can be
//! tested (see the scheduler ablation experiment).

use resmatch_workload::Time;
use serde::{Deserialize, Serialize};

/// Queue discipline for the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum SchedulingPolicy {
    /// Strict first-come-first-served: when the head cannot start, nothing
    /// behind it may (the paper's configuration).
    #[default]
    Fcfs,
    /// Shortest (requested-runtime) job first, no skipping: jobs are tried
    /// in increasing runtime-estimate order and scheduling stops at the
    /// first that does not fit.
    Sjf,
    /// EASY backfilling: the head gets a reservation at its shadow time;
    /// any queued job that fits *now* and would finish before the shadow
    /// time may jump ahead.
    EasyBackfill,
}

/// Earliest time at which at least `needed` eligible nodes are simultaneously
/// free, given `free_now` already-free eligible nodes and future `releases`
/// of `(time, eligible_node_count)` from running jobs.
///
/// `releases` need not be sorted. Returns `None` when even all releases
/// cannot satisfy `needed` (the job is simply too big for the machine).
pub fn shadow_time(
    free_now: u32,
    needed: u32,
    releases: &[(Time, u32)],
    now: Time,
) -> Option<Time> {
    if free_now >= needed {
        return Some(now);
    }
    let mut sorted: Vec<(Time, u32)> = releases.to_vec();
    sorted.sort_by_key(|&(t, _)| t);
    let mut free = free_now;
    for (t, count) in sorted {
        free += count;
        if free >= needed {
            return Some(t.max(now));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> Time {
        Time::from_secs(s)
    }

    #[test]
    fn immediate_when_already_free() {
        assert_eq!(shadow_time(8, 4, &[], t(100)), Some(t(100)));
        assert_eq!(shadow_time(4, 4, &[], t(100)), Some(t(100)));
    }

    #[test]
    fn accumulates_releases_in_time_order() {
        // Unsorted input: releases at 30 (2 nodes), 10 (1), 20 (3).
        let releases = [(t(30), 2), (t(10), 1), (t(20), 3)];
        // Need 4 with 1 free: 1+1=2 at 10, +3=5 at 20 → shadow = 20.
        assert_eq!(shadow_time(1, 4, &releases, t(0)), Some(t(20)));
        // Need 7: 1+1+3+2 = 7 at 30.
        assert_eq!(shadow_time(1, 7, &releases, t(0)), Some(t(30)));
    }

    #[test]
    fn impossible_demand_is_none() {
        let releases = [(t(10), 2)];
        assert_eq!(shadow_time(1, 10, &releases, t(0)), None);
    }

    #[test]
    fn shadow_never_precedes_now() {
        let releases = [(t(5), 4)];
        assert_eq!(shadow_time(0, 4, &releases, t(50)), Some(t(50)));
    }

    #[test]
    fn zero_needed_is_immediate() {
        assert_eq!(shadow_time(0, 0, &[], t(3)), Some(t(3)));
    }

    #[test]
    fn simultaneous_releases_accumulate_at_one_instant() {
        // Two jobs ending at the same tick: both counts are available at
        // that tick, whichever order the sort leaves them in.
        let releases = [(t(10), 2), (t(10), 3)];
        assert_eq!(shadow_time(0, 5, &releases, t(0)), Some(t(10)));
        assert_eq!(shadow_time(0, 4, &releases, t(0)), Some(t(10)));
        // A need met by the first co-timed release alone still resolves to
        // the shared instant.
        assert_eq!(shadow_time(0, 2, &releases, t(0)), Some(t(10)));
    }

    #[test]
    fn head_satisfiable_only_by_fully_drained_cluster() {
        // The head needs every node the machine has: the shadow is the
        // final release, exactly — not None, and not any earlier time.
        let releases = [(t(5), 2), (t(9), 4), (t(12), 2)];
        assert_eq!(shadow_time(0, 8, &releases, t(0)), Some(t(12)));
        // One more node than exists is impossible.
        assert_eq!(shadow_time(0, 9, &releases, t(0)), None);
    }

    #[test]
    fn zero_free_nodes_at_pass_time() {
        // Nothing free now: the first sufficient release decides.
        assert_eq!(shadow_time(0, 3, &[(t(4), 3)], t(0)), Some(t(4)));
        // Nothing free and nothing running: no demand is satisfiable.
        assert_eq!(shadow_time(0, 1, &[], t(0)), None);
    }
}
