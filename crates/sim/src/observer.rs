//! Pluggable observability: the [`SimObserver`] event stream and shipped
//! observer implementations.
//!
//! The engine drives an optional observer through every scheduling
//! decision — arrivals, admissions (with the estimated demand), execution
//! starts (with the granted capacity), completions, under-provision
//! failures, estimator feedback deliveries, estimator-bypass transitions,
//! and cluster churn. When no observer is attached the cost is a single
//! branch per callback site, so an unobserved run pays nothing measurable
//! (the golden and throughput suites pin this).
//!
//! Shipped implementations:
//!
//! - [`TraceLogObserver`] — reproduces the historical [`TraceLog`]
//!   byte-for-byte and deposits it into [`SimResult::trace_log`] when the
//!   run ends;
//! - [`CountersObserver`] — lock-free atomic counters shared across clones,
//!   so sweeps can stream aggregate progress from worker threads;
//! - [`ProgressObserver`] — periodic progress lines (stderr by default) for
//!   long runs and sweeps;
//! - [`MultiObserver`] — composes any number of observers into one.
//!
//! Sweeps observe through the separate [`SweepObserver`] trait: a sweep
//! point runs on whatever worker thread claims it, so the sweep-level hook
//! takes `&self` and must be `Sync`, while the engine-level [`SimObserver`]
//! is single-threaded per run and takes `&mut self`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use resmatch_workload::{JobId, Time};

use crate::metrics::{RunCounters, SimResult};
use crate::tracelog::{TraceKind, TraceLog};

/// Receiver for the engine's per-decision event stream.
///
/// Every callback has a no-op default, so implementations override only
/// what they need. Callbacks fire synchronously on the simulation thread in
/// event order; an observer that blocks stalls the run.
pub trait SimObserver: Send {
    /// The run is starting; `total_jobs` is the workload size.
    fn on_run_start(&mut self, total_jobs: usize) {
        let _ = total_jobs;
    }

    /// A job arrived (its trace submit time was reached).
    fn on_arrival(&mut self, time: Time, job: JobId) {
        let _ = (time, job);
    }

    /// A (re)submission entered the queue with this estimated demand.
    /// `attempt` is 0 for the first submission and counts failed
    /// executions on requeues.
    fn on_admitted(&mut self, time: Time, job: JobId, demand_kb: u64, attempt: u32) {
        let _ = (time, job, demand_kb, attempt);
    }

    /// An execution started on `nodes` machines whose weakest member holds
    /// `granted_kb` of memory.
    fn on_started(&mut self, time: Time, job: JobId, granted_kb: u64, nodes: u32) {
        let _ = (time, job, granted_kb, nodes);
    }

    /// An execution completed successfully.
    fn on_completed(&mut self, time: Time, job: JobId) {
        let _ = (time, job);
    }

    /// An execution died. `under_provisioned` is true when the allocation
    /// genuinely could not hold the job (the paper's failure mode) and
    /// false for an injected false-positive fault.
    fn on_failed(&mut self, time: Time, job: JobId, under_provisioned: bool) {
        let _ = (time, job, under_provisioned);
    }

    /// The estimator received feedback for a finished execution.
    fn on_feedback(&mut self, time: Time, job: JobId, success: bool) {
        let _ = (time, job, success);
    }

    /// An admission bypassed the estimator and submitted the raw user
    /// request — the engine's backoff after
    /// [`SimConfig::max_estimation_attempts`](crate::engine::SimConfig::max_estimation_attempts)
    /// failed executions.
    fn on_estimator_bypassed(&mut self, time: Time, job: JobId, attempts: u32) {
        let _ = (time, job, attempts);
    }

    /// Cluster membership changed by `delta` nodes (negative = leave).
    fn on_churn(&mut self, time: Time, delta: i64) {
        let _ = (time, delta);
    }

    /// Matchmaking mode only: the engine asked the matchmaker to place
    /// `nodes` machines for `job`. Fires once per genuine allocation
    /// attempt — entries skipped by the availability fast paths never
    /// reach the matchmaker and are not reported.
    fn on_match_attempt(&mut self, time: Time, job: JobId, nodes: u32) {
        let _ = (time, job, nodes);
    }

    /// Matchmaking mode only: the attempt reported by
    /// [`SimObserver::on_match_attempt`] found no placement (too few
    /// eligible free nodes among the matching pools).
    fn on_match_refused(&mut self, time: Time, job: JobId) {
        let _ = (time, job);
    }

    /// The run finished. Observers may fold what they accumulated into the
    /// result (this is how [`TraceLogObserver`] populates
    /// [`SimResult::trace_log`]).
    fn on_run_end(&mut self, result: &mut SimResult) {
        let _ = result;
    }
}

/// Thread-safe observer attachment for sweeps
/// ([`run_load_sweep_observed`](crate::experiment::run_load_sweep_observed)
/// and
/// [`run_cluster_sweep_observed`](crate::experiment::run_cluster_sweep_observed)).
///
/// Sweep points run concurrently on a worker pool, so these hooks take
/// `&self`; implementations share state through atomics or locks.
pub trait SweepObserver: Send + Sync {
    /// Build the engine-level observer to attach to point `index`'s
    /// simulation(s), or `None` to run the point unobserved. Called from
    /// the worker thread that claims the point.
    fn point_observer(&self, index: usize) -> Option<Box<dyn SimObserver>> {
        let _ = index;
        None
    }

    /// A sweep point finished; called from its worker thread with the
    /// point's (estimated, for cluster sweeps) result.
    fn on_point_complete(&self, index: usize, total: usize, result: &SimResult) {
        let _ = (index, total, result);
    }
}

/// Reproduces the historical [`TraceLog`] through the observer layer.
///
/// Attached via [`Simulation::builder`](crate::engine::Simulation::builder)
/// (the `.trace_log()` sugar), it records exactly the
/// entries the bool-gated implementation recorded — admissions, starts,
/// completions, failures, churn — and moves the finished log into
/// [`SimResult::trace_log`] when the run ends. Fixed-seed runs are
/// byte-identical to the pre-observer engine.
#[derive(Debug, Default)]
pub struct TraceLogObserver {
    log: TraceLog,
}

impl TraceLogObserver {
    /// New, empty trace-log observer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl SimObserver for TraceLogObserver {
    fn on_admitted(&mut self, time: Time, job: JobId, demand_kb: u64, attempt: u32) {
        self.log
            .push(time, job, TraceKind::Admitted { demand_kb, attempt });
    }

    fn on_started(&mut self, time: Time, job: JobId, granted_kb: u64, nodes: u32) {
        self.log
            .push(time, job, TraceKind::Started { granted_kb, nodes });
    }

    fn on_completed(&mut self, time: Time, job: JobId) {
        self.log.push(time, job, TraceKind::Completed);
    }

    fn on_failed(&mut self, time: Time, job: JobId, _under_provisioned: bool) {
        self.log.push(time, job, TraceKind::Failed);
    }

    fn on_churn(&mut self, time: Time, delta: i64) {
        self.log.push(time, JobId(0), TraceKind::Churn { delta });
    }

    fn on_run_end(&mut self, result: &mut SimResult) {
        result.trace_log = std::mem::take(&mut self.log);
    }
}

/// Shared atomic counter block behind [`CountersObserver`] clones.
#[derive(Debug, Default)]
struct SharedCounters {
    arrivals: AtomicU64,
    admissions: AtomicU64,
    started: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    requeued: AtomicU64,
    estimator_bypassed: AtomicU64,
    churn_events: AtomicU64,
    match_attempts: AtomicU64,
    match_refusals: AtomicU64,
    runs_started: AtomicU64,
    runs_finished: AtomicU64,
    sweep_points: AtomicU64,
    run_wall_us: AtomicU64,
}

/// Live, thread-safe run counters.
///
/// Clones share one atomic counter block, so a sweep can hand every worker
/// thread its own clone while the caller's handle watches the aggregate
/// stream live via [`CountersObserver::snapshot`]. Per-run wall clock is
/// measured per clone (each sweep point gets its own clone) and summed into
/// the shared block, giving cumulative simulation wall time across points.
#[derive(Debug, Default)]
pub struct CountersObserver {
    inner: Arc<SharedCounters>,
    run_started_at: Option<Instant>,
}

impl Clone for CountersObserver {
    fn clone(&self) -> Self {
        CountersObserver {
            inner: Arc::clone(&self.inner),
            // Wall-clock timing is per-run, not shared.
            run_started_at: None,
        }
    }
}

/// Point-in-time view of a [`CountersObserver`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CountersSnapshot {
    /// Event counters, aggregated across every observed run so far.
    pub counters: RunCounters,
    /// Runs that started.
    pub runs_started: u64,
    /// Runs that finished.
    pub runs_finished: u64,
    /// Sweep points that completed (when used as a [`SweepObserver`]).
    pub sweep_points: u64,
    /// Cumulative wall-clock seconds spent inside observed runs.
    pub run_wall_s: f64,
}

impl CountersObserver {
    /// New counter block, all zeros.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot the current aggregate counts. Safe to call from any thread
    /// while runs are in flight; individual counters are each atomically
    /// read, so a mid-run snapshot is approximate across counters but
    /// never torn within one.
    pub fn snapshot(&self) -> CountersSnapshot {
        let c = &self.inner;
        let load = |a: &AtomicU64| a.load(Ordering::Relaxed);
        CountersSnapshot {
            counters: RunCounters {
                arrivals: load(&c.arrivals),
                admissions: load(&c.admissions),
                started: load(&c.started),
                completed: load(&c.completed),
                failed: load(&c.failed),
                requeued: load(&c.requeued),
                estimator_bypassed: load(&c.estimator_bypassed),
                churn_events: load(&c.churn_events),
                match_attempts: load(&c.match_attempts),
                match_refusals: load(&c.match_refusals),
            },
            runs_started: load(&c.runs_started),
            runs_finished: load(&c.runs_finished),
            sweep_points: load(&c.sweep_points),
            run_wall_s: load(&c.run_wall_us) as f64 / 1e6,
        }
    }
}

impl SimObserver for CountersObserver {
    fn on_run_start(&mut self, _total_jobs: usize) {
        self.inner.runs_started.fetch_add(1, Ordering::Relaxed);
        // Wall-clock here only feeds the observability snapshot
        // (run_wall_s); SimResult itself is untouched by this timing.
        // lint: allow(determinism): observability-only wall clock
        self.run_started_at = Some(Instant::now());
    }

    fn on_arrival(&mut self, _time: Time, _job: JobId) {
        self.inner.arrivals.fetch_add(1, Ordering::Relaxed);
    }

    fn on_admitted(&mut self, _time: Time, _job: JobId, _demand_kb: u64, attempt: u32) {
        self.inner.admissions.fetch_add(1, Ordering::Relaxed);
        if attempt > 0 {
            self.inner.requeued.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn on_started(&mut self, _time: Time, _job: JobId, _granted_kb: u64, _nodes: u32) {
        self.inner.started.fetch_add(1, Ordering::Relaxed);
    }

    fn on_completed(&mut self, _time: Time, _job: JobId) {
        self.inner.completed.fetch_add(1, Ordering::Relaxed);
    }

    fn on_failed(&mut self, _time: Time, _job: JobId, _under_provisioned: bool) {
        self.inner.failed.fetch_add(1, Ordering::Relaxed);
    }

    fn on_estimator_bypassed(&mut self, _time: Time, _job: JobId, _attempts: u32) {
        self.inner
            .estimator_bypassed
            .fetch_add(1, Ordering::Relaxed);
    }

    fn on_churn(&mut self, _time: Time, _delta: i64) {
        self.inner.churn_events.fetch_add(1, Ordering::Relaxed);
    }

    fn on_match_attempt(&mut self, _time: Time, _job: JobId, _nodes: u32) {
        self.inner.match_attempts.fetch_add(1, Ordering::Relaxed);
    }

    fn on_match_refused(&mut self, _time: Time, _job: JobId) {
        self.inner.match_refusals.fetch_add(1, Ordering::Relaxed);
    }

    fn on_run_end(&mut self, _result: &mut SimResult) {
        if let Some(start) = self.run_started_at.take() {
            self.inner
                .run_wall_us
                .fetch_add(start.elapsed().as_micros() as u64, Ordering::Relaxed);
        }
        self.inner.runs_finished.fetch_add(1, Ordering::Relaxed);
    }
}

impl SweepObserver for CountersObserver {
    fn point_observer(&self, _index: usize) -> Option<Box<dyn SimObserver>> {
        Some(Box::new(self.clone()))
    }

    fn on_point_complete(&self, _index: usize, _total: usize, _result: &SimResult) {
        self.inner.sweep_points.fetch_add(1, Ordering::Relaxed);
    }
}

/// Where a [`ProgressObserver`] writes its lines.
type ProgressSink = Arc<dyn Fn(&str) + Send + Sync>;

/// Periodic human-readable progress lines for long runs and sweeps.
///
/// As a [`SimObserver`] it emits a line every `every_events` engine events
/// plus a summary when the run ends; as a [`SweepObserver`] it reports each
/// completed point. Output goes to stderr unless a custom sink is
/// installed with [`ProgressObserver::with_sink`] (tests capture lines this
/// way).
pub struct ProgressObserver {
    label: String,
    every_events: u64,
    sink: ProgressSink,
    events: u64,
    completed: u64,
    failed: u64,
    last_time: Time,
    points_done: Arc<AtomicU64>,
}

impl std::fmt::Debug for ProgressObserver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProgressObserver")
            .field("label", &self.label)
            .field("every_events", &self.every_events)
            .field("events", &self.events)
            .finish_non_exhaustive()
    }
}

impl Default for ProgressObserver {
    fn default() -> Self {
        ProgressObserver::new("sim", 250_000)
    }
}

impl Clone for ProgressObserver {
    fn clone(&self) -> Self {
        ProgressObserver {
            label: self.label.clone(),
            every_events: self.every_events,
            sink: Arc::clone(&self.sink),
            // Event counts are per-run; the shared point counter is not.
            events: 0,
            completed: 0,
            failed: 0,
            last_time: Time::ZERO,
            points_done: Arc::clone(&self.points_done),
        }
    }
}

impl ProgressObserver {
    /// Progress every `every_events` engine events, labelled `label` in
    /// each line. `every_events == 0` silences periodic lines, keeping
    /// only run-end and sweep-point reports.
    pub fn new(label: impl Into<String>, every_events: u64) -> Self {
        ProgressObserver {
            label: label.into(),
            every_events,
            sink: Arc::new(|line| eprintln!("{line}")),
            events: 0,
            completed: 0,
            failed: 0,
            last_time: Time::ZERO,
            points_done: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Redirect output to a custom sink instead of stderr.
    pub fn with_sink(mut self, sink: impl Fn(&str) + Send + Sync + 'static) -> Self {
        self.sink = Arc::new(sink);
        self
    }

    fn tick(&mut self, time: Time) {
        self.events += 1;
        self.last_time = time;
        if self.every_events > 0 && self.events.is_multiple_of(self.every_events) {
            (self.sink)(&format!(
                "[{}] {} events, {} completed, {} failed, sim t={}s",
                self.label,
                self.events,
                self.completed,
                self.failed,
                time.as_secs_f64() as u64,
            ));
        }
    }
}

impl SimObserver for ProgressObserver {
    fn on_run_start(&mut self, total_jobs: usize) {
        self.events = 0;
        self.completed = 0;
        self.failed = 0;
        if self.every_events > 0 {
            (self.sink)(&format!(
                "[{}] run started: {} jobs",
                self.label, total_jobs
            ));
        }
    }

    fn on_arrival(&mut self, time: Time, _job: JobId) {
        self.tick(time);
    }

    fn on_completed(&mut self, time: Time, _job: JobId) {
        self.completed += 1;
        self.tick(time);
    }

    fn on_failed(&mut self, time: Time, _job: JobId, _under_provisioned: bool) {
        self.failed += 1;
        self.tick(time);
    }

    fn on_churn(&mut self, time: Time, _delta: i64) {
        self.tick(time);
    }

    fn on_run_end(&mut self, result: &mut SimResult) {
        (self.sink)(&format!(
            "[{}] run finished: {} completed, {} dropped, {} failed executions, makespan {}s",
            self.label,
            result.completed_jobs,
            result.dropped_jobs,
            result.failed_executions,
            result.makespan().as_secs_f64() as u64,
        ));
    }
}

impl SweepObserver for ProgressObserver {
    fn on_point_complete(&self, index: usize, total: usize, result: &SimResult) {
        let done = self.points_done.fetch_add(1, Ordering::Relaxed) + 1;
        (self.sink)(&format!(
            "[{}] sweep point {index} done ({done}/{total}): estimator={} util={:.4}",
            self.label,
            result.estimator,
            result.utilization(),
        ));
    }
}

/// Fans every callback out to a list of observers, in attachment order.
#[derive(Default)]
pub struct MultiObserver {
    observers: Vec<Box<dyn SimObserver>>,
}

impl std::fmt::Debug for MultiObserver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MultiObserver")
            .field("observers", &self.observers.len())
            .finish()
    }
}

impl MultiObserver {
    /// New, empty composition.
    pub fn new() -> Self {
        Self::default()
    }

    /// Chain-style attachment.
    pub fn with(mut self, observer: impl SimObserver + 'static) -> Self {
        self.observers.push(Box::new(observer));
        self
    }

    /// Append an already-boxed observer.
    pub fn push(&mut self, observer: Box<dyn SimObserver>) {
        self.observers.push(observer);
    }

    /// Compose two boxed observers (used when stacking attachments).
    pub fn pair(first: Box<dyn SimObserver>, second: Box<dyn SimObserver>) -> Self {
        MultiObserver {
            observers: vec![first, second],
        }
    }

    /// Number of composed observers.
    pub fn len(&self) -> usize {
        self.observers.len()
    }

    /// True when nothing is attached.
    pub fn is_empty(&self) -> bool {
        self.observers.is_empty()
    }
}

impl SimObserver for MultiObserver {
    fn on_run_start(&mut self, total_jobs: usize) {
        for o in &mut self.observers {
            o.on_run_start(total_jobs);
        }
    }

    fn on_arrival(&mut self, time: Time, job: JobId) {
        for o in &mut self.observers {
            o.on_arrival(time, job);
        }
    }

    fn on_admitted(&mut self, time: Time, job: JobId, demand_kb: u64, attempt: u32) {
        for o in &mut self.observers {
            o.on_admitted(time, job, demand_kb, attempt);
        }
    }

    fn on_started(&mut self, time: Time, job: JobId, granted_kb: u64, nodes: u32) {
        for o in &mut self.observers {
            o.on_started(time, job, granted_kb, nodes);
        }
    }

    fn on_completed(&mut self, time: Time, job: JobId) {
        for o in &mut self.observers {
            o.on_completed(time, job);
        }
    }

    fn on_failed(&mut self, time: Time, job: JobId, under_provisioned: bool) {
        for o in &mut self.observers {
            o.on_failed(time, job, under_provisioned);
        }
    }

    fn on_feedback(&mut self, time: Time, job: JobId, success: bool) {
        for o in &mut self.observers {
            o.on_feedback(time, job, success);
        }
    }

    fn on_estimator_bypassed(&mut self, time: Time, job: JobId, attempts: u32) {
        for o in &mut self.observers {
            o.on_estimator_bypassed(time, job, attempts);
        }
    }

    fn on_churn(&mut self, time: Time, delta: i64) {
        for o in &mut self.observers {
            o.on_churn(time, delta);
        }
    }

    fn on_match_attempt(&mut self, time: Time, job: JobId, nodes: u32) {
        for o in &mut self.observers {
            o.on_match_attempt(time, job, nodes);
        }
    }

    fn on_match_refused(&mut self, time: Time, job: JobId) {
        for o in &mut self.observers {
            o.on_match_refused(time, job);
        }
    }

    fn on_run_end(&mut self, result: &mut SimResult) {
        for o in &mut self.observers {
            o.on_run_end(result);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_log_observer_reproduces_entries() {
        let mut obs = TraceLogObserver::new();
        obs.on_admitted(Time::from_secs(1), JobId(7), 4096, 0);
        obs.on_started(Time::from_secs(2), JobId(7), 8192, 4);
        obs.on_completed(Time::from_secs(3), JobId(7));
        obs.on_failed(Time::from_secs(4), JobId(8), true);
        obs.on_churn(Time::from_secs(5), -4);
        assert_eq!(obs.log.len(), 5);
        assert_eq!(obs.log.granted_trajectory(JobId(7)), vec![8192]);
        // Churn entries carry the cluster-level JobId(0).
        assert_eq!(obs.log.for_job(JobId(0)).count(), 1);
    }

    #[test]
    fn counters_clones_share_the_block() {
        let a = CountersObserver::new();
        let mut b = a.clone();
        b.on_arrival(Time::ZERO, JobId(1));
        b.on_admitted(Time::ZERO, JobId(1), 100, 0);
        b.on_admitted(Time::ZERO, JobId(1), 100, 2);
        b.on_estimator_bypassed(Time::ZERO, JobId(1), 3);
        let snap = a.snapshot();
        assert_eq!(snap.counters.arrivals, 1);
        assert_eq!(snap.counters.admissions, 2);
        assert_eq!(snap.counters.requeued, 1);
        assert_eq!(snap.counters.estimator_bypassed, 1);
        assert_eq!(snap.runs_started, 0);
    }

    #[test]
    fn progress_observer_emits_to_sink() {
        use std::sync::Mutex;
        let lines = Arc::new(Mutex::new(Vec::<String>::new()));
        let sink_lines = Arc::clone(&lines);
        let mut obs = ProgressObserver::new("test", 2)
            .with_sink(move |l| sink_lines.lock().unwrap().push(l.to_string()));
        obs.on_run_start(10);
        obs.on_arrival(Time::from_secs(1), JobId(1));
        obs.on_arrival(Time::from_secs(2), JobId(2));
        obs.on_arrival(Time::from_secs(3), JobId(3));
        obs.on_completed(Time::from_secs(4), JobId(1));
        let got = lines.lock().unwrap().clone();
        // Start line + ticks at events 2 and 4.
        assert_eq!(got.len(), 3, "{got:?}");
        assert!(got[0].contains("run started: 10 jobs"));
        assert!(got[1].contains("2 events"));
        assert!(got[2].contains("1 completed"));
    }

    #[test]
    fn multi_observer_fans_out_in_order() {
        let counters = CountersObserver::new();
        let mut multi = MultiObserver::new()
            .with(TraceLogObserver::new())
            .with(counters.clone());
        assert_eq!(multi.len(), 2);
        multi.on_arrival(Time::ZERO, JobId(1));
        multi.on_admitted(Time::ZERO, JobId(1), 64, 0);
        assert_eq!(counters.snapshot().counters.admissions, 1);
    }
}
