//! Incremental release table for EASY backfilling.
//!
//! The reservation phase of EASY needs, on every scheduling pass, the
//! earliest time at which enough head-eligible nodes are simultaneously
//! free. The engine used to rebuild a `Vec<(Time, u32)>` over the whole
//! running set and sort it inside every pass; this table keeps the running
//! jobs sorted by conservative completion time *incrementally* — O(running)
//! memmove on start/finish instead of an O(R log R) rebuild per pass — and
//! caches each running job's eligible-node count under a head-demand epoch
//! so `allocation_nodes_satisfying` is only re-walked when the head demand
//! actually changed. The crossing walk early-exits at the release that
//! satisfies the head, which the sort-then-scan shape never could.
//!
//! The computed crossing time is exactly what [`crate::scheduler::shadow_time`]
//! returns for the same multiset of releases: accumulation order among
//! equal-time releases cannot move the crossing, so maintaining sorted
//! order incrementally is outcome-identical to the per-pass stable sort
//! (debug builds cross-check the two paths in the engine).

use resmatch_workload::Time;

/// Running jobs ordered by conservative completion time, with per-run
/// eligible-node counts cached under a demand epoch.
#[derive(Debug, Default)]
pub(crate) struct ReleaseTable {
    /// `(expected_end, run_id)`, ascending by time; ties keep insertion
    /// order (irrelevant to the crossing, deterministic anyway).
    entries: Vec<(Time, u64)>,
    /// Per-run `(demand_epoch, eligible_count)`, indexed by run id. A
    /// stamp that differs from the query epoch marks the count stale.
    eligible: Vec<(u64, u32)>,
}

impl ReleaseTable {
    /// Drop every entry but keep capacity (arena reuse across runs).
    pub(crate) fn clear(&mut self) {
        self.entries.clear();
        self.eligible.clear();
    }

    /// Record a started execution. Run ids are recycled by the engine's
    /// slab, so any cached eligible count for this id belongs to a dead
    /// run and is invalidated here.
    pub(crate) fn insert(&mut self, expected_end: Time, run_id: u64) {
        let pos = self.entries.partition_point(|&(t, _)| t <= expected_end);
        self.entries.insert(pos, (expected_end, run_id));
        let slot = run_id as usize;
        if slot >= self.eligible.len() {
            self.eligible.resize(slot + 1, (0, 0));
        }
        self.eligible[slot] = (0, 0);
    }

    /// Remove a finished execution by its recorded conservative end time.
    pub(crate) fn remove(&mut self, expected_end: Time, run_id: u64) {
        let start = self.entries.partition_point(|&(t, _)| t < expected_end);
        let offset = self.entries[start..]
            .iter()
            .position(|&(_, id)| id == run_id)
            .expect("invariant: every running execution has a release entry");
        self.entries.remove(start + offset);
    }

    /// Earliest conservative completion time by which at least `needed`
    /// eligible nodes are simultaneously free, with `free_now` already
    /// free. Returns `Time::ZERO` when `free_now` suffices and `None` when
    /// even a fully drained cluster does not.
    ///
    /// `eligible_of(run_id)` counts a running job's nodes that satisfy the
    /// head demand; it is consulted only for entries whose cached count is
    /// stale under `demand_epoch`, and only up to the crossing entry.
    pub(crate) fn crossing(
        &mut self,
        free_now: u32,
        needed: u32,
        demand_epoch: u64,
        mut eligible_of: impl FnMut(u64) -> u32,
    ) -> Option<Time> {
        if free_now >= needed {
            return Some(Time::ZERO);
        }
        let mut free = free_now;
        for &(time, run_id) in &self.entries {
            let slot = &mut self.eligible[run_id as usize];
            if slot.0 != demand_epoch {
                *slot = (demand_epoch, eligible_of(run_id));
            }
            free += slot.1;
            if free >= needed {
                return Some(time);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> Time {
        Time::from_secs(s)
    }

    #[test]
    fn crossing_matches_shadow_time_semantics() {
        let mut table = ReleaseTable::default();
        // Inserted out of time order: 30 (run 0, 2 nodes), 10 (run 1, 1),
        // 20 (run 2, 3) — mirrors the shadow_time doc test.
        table.insert(t(30), 0);
        table.insert(t(10), 1);
        table.insert(t(20), 2);
        let counts = [2u32, 1, 3];
        // Need 4 with 1 free: crossing at 20. Need 7: crossing at 30.
        assert_eq!(
            table.crossing(1, 4, 1, |id| counts[id as usize]),
            Some(t(20))
        );
        assert_eq!(
            table.crossing(1, 7, 1, |id| counts[id as usize]),
            Some(t(30))
        );
        // Impossible demand: even a drained cluster is short.
        assert_eq!(table.crossing(1, 10, 1, |id| counts[id as usize]), None);
        // Already satisfiable now.
        assert_eq!(table.crossing(4, 4, 1, |_| 0), Some(Time::ZERO));
    }

    #[test]
    fn eligible_counts_cache_per_epoch() {
        let mut table = ReleaseTable::default();
        table.insert(t(10), 0);
        table.insert(t(20), 1);
        let mut calls = 0;
        // First query at epoch 1 computes both counts.
        assert_eq!(
            table.crossing(0, 4, 1, |_| {
                calls += 1;
                2
            }),
            Some(t(20))
        );
        assert_eq!(calls, 2);
        // Same epoch: fully served from cache.
        assert_eq!(table.crossing(0, 4, 1, |_| unreachable!()), Some(t(20)));
        // New epoch: recomputed.
        assert_eq!(
            table.crossing(0, 2, 2, |_| {
                calls += 1;
                2
            }),
            Some(t(10))
        );
        assert_eq!(calls, 3, "early exit stops at the crossing entry");
    }

    #[test]
    fn remove_handles_simultaneous_releases() {
        let mut table = ReleaseTable::default();
        table.insert(t(10), 0);
        table.insert(t(10), 1);
        table.insert(t(10), 2);
        table.remove(t(10), 1);
        let counts = [1u32, 99, 1];
        // Run 1 is gone: the two survivors must both release to reach 2.
        assert_eq!(
            table.crossing(0, 2, 1, |id| counts[id as usize]),
            Some(t(10))
        );
        assert_eq!(table.crossing(0, 3, 1, |id| counts[id as usize]), None);
        table.remove(t(10), 0);
        table.remove(t(10), 2);
        assert_eq!(table.crossing(0, 1, 2, |_| unreachable!()), None);
    }

    #[test]
    fn recycled_run_id_invalidates_stale_count() {
        let mut table = ReleaseTable::default();
        table.insert(t(10), 0);
        assert_eq!(table.crossing(0, 5, 1, |_| 5), Some(t(10)));
        table.remove(t(10), 0);
        // A new run reuses id 0 within the same demand epoch: the cached
        // count (5) belongs to the dead run and must not be reused.
        table.insert(t(30), 0);
        assert_eq!(table.crossing(0, 2, 1, |_| 2), Some(t(30)));
    }
}
