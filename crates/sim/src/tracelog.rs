//! Optional per-decision trace logging.
//!
//! When enabled, the engine records every scheduling decision — admissions
//! with their estimated demands, execution starts with the granted
//! capacity, completions, failures, and churn — as a flat, serializable
//! event list. This is the observability surface a production deployment
//! of the estimator would need (the paper's Figure 7 is exactly one group's
//! slice of such a log), and what the `fig7`-style analyses consume.

use resmatch_workload::{JobId, Time};
use serde::{Deserialize, Serialize};

/// One logged decision.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceEntry {
    /// When it happened.
    pub time: Time,
    /// The job concerned (`JobId(0)` for cluster-level events).
    pub job: JobId,
    /// What happened.
    pub kind: TraceKind,
}

/// Decision kinds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TraceKind {
    /// A (re)submission entered the queue with this estimated demand.
    Admitted {
        /// Estimated memory demand, KB per node.
        demand_kb: u64,
        /// Retry count (0 for the first submission).
        attempt: u32,
    },
    /// An execution started.
    Started {
        /// Weakest allocated node's memory, KB — the capacity the job can
        /// actually use.
        granted_kb: u64,
        /// Nodes allocated.
        nodes: u32,
    },
    /// An execution completed successfully.
    Completed,
    /// An execution died (under-provisioning or injected fault).
    Failed,
    /// Cluster membership changed by this many nodes (negative = leave).
    Churn {
        /// Signed node delta.
        delta: i64,
    },
}

/// A run's decision log.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TraceLog {
    entries: Vec<TraceEntry>,
}

impl TraceLog {
    /// All entries, in event order.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Append one entry.
    pub fn push(&mut self, time: Time, job: JobId, kind: TraceKind) {
        self.entries.push(TraceEntry { time, job, kind });
    }

    /// Entries concerning one job.
    pub fn for_job(&self, job: JobId) -> impl Iterator<Item = &TraceEntry> {
        self.entries.iter().filter(move |e| e.job == job)
    }

    /// The granted-capacity trajectory of one job's executions — Figure 7's
    /// series when the job belongs to the traced group.
    pub fn granted_trajectory(&self, job: JobId) -> Vec<u64> {
        self.for_job(job)
            .filter_map(|e| match e.kind {
                TraceKind::Started { granted_kb, .. } => Some(granted_kb),
                _ => None,
            })
            .collect()
    }

    /// Render as CSV for external tooling.
    pub fn to_csv(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("time_ms,job,kind,demand_kb,granted_kb,nodes,attempt,delta\n");
        for e in &self.entries {
            let (kind, demand, granted, nodes, attempt, delta) = match e.kind {
                TraceKind::Admitted { demand_kb, attempt } => {
                    ("admitted", demand_kb as i64, -1, -1, attempt as i64, 0)
                }
                TraceKind::Started { granted_kb, nodes } => {
                    ("started", -1, granted_kb as i64, nodes as i64, -1, 0)
                }
                TraceKind::Completed => ("completed", -1, -1, -1, -1, 0),
                TraceKind::Failed => ("failed", -1, -1, -1, -1, 0),
                TraceKind::Churn { delta } => ("churn", -1, -1, -1, -1, delta),
            };
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{},{}",
                e.time.as_millis(),
                e.job.0,
                kind,
                demand,
                granted,
                nodes,
                attempt,
                delta
            );
        }
        out
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing was logged.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_query() {
        let mut log = TraceLog::default();
        log.push(
            Time::from_secs(1),
            JobId(7),
            TraceKind::Admitted {
                demand_kb: 100,
                attempt: 0,
            },
        );
        log.push(
            Time::from_secs(2),
            JobId(7),
            TraceKind::Started {
                granted_kb: 128,
                nodes: 4,
            },
        );
        log.push(Time::from_secs(3), JobId(9), TraceKind::Completed);
        assert_eq!(log.len(), 3);
        assert_eq!(log.for_job(JobId(7)).count(), 2);
        assert_eq!(log.granted_trajectory(JobId(7)), vec![128]);
        assert!(log.granted_trajectory(JobId(9)).is_empty());
    }

    #[test]
    fn csv_has_one_row_per_entry() {
        let mut log = TraceLog::default();
        log.push(Time::ZERO, JobId(1), TraceKind::Failed);
        log.push(Time::ZERO, JobId(0), TraceKind::Churn { delta: -4 });
        let csv = log.to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.contains("churn"));
        assert!(csv.contains(",-4"));
    }

    #[test]
    fn empty_log() {
        let log = TraceLog::default();
        assert!(log.is_empty());
        assert_eq!(log.to_csv().lines().count(), 1);
    }
}
