//! Property-based tests on the simulation engine: conservation laws and
//! sanity invariants under arbitrary small workloads and estimators.

use proptest::prelude::*;
use resmatch_cluster::ClusterBuilder;
use resmatch_core::prelude::*;
use resmatch_sim::prelude::*;
use resmatch_workload::job::JobBuilder;
use resmatch_workload::{Time, Workload};

const MB: u64 = 1024;

#[derive(Debug, Clone)]
struct JobSpec {
    user: u32,
    app: u32,
    submit_s: u64,
    runtime_s: u64,
    nodes: u32,
    req_mb: u64,
    used_frac: f64,
}

fn arb_jobs() -> impl Strategy<Value = Vec<JobSpec>> {
    prop::collection::vec(
        (
            0u32..4,
            0u32..3,
            0u64..5_000,
            1u64..2_000,
            1u32..12,
            1u64..33,
            0.01f64..1.0,
        )
            .prop_map(
                |(user, app, submit_s, runtime_s, nodes, req_mb, used_frac)| JobSpec {
                    user,
                    app,
                    submit_s,
                    runtime_s,
                    nodes,
                    req_mb,
                    used_frac,
                },
            ),
        1..60,
    )
}

fn workload(specs: &[JobSpec]) -> Workload {
    Workload::new(
        specs
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let req = s.req_mb * MB;
                JobBuilder::new(i as u64 + 1)
                    .user(s.user)
                    .app(s.app)
                    .submit(Time::from_secs(s.submit_s))
                    .runtime(Time::from_secs(s.runtime_s))
                    .nodes(s.nodes)
                    .requested_mem_kb(req)
                    .used_mem_kb(((req as f64 * s.used_frac) as u64).max(1))
                    .build()
            })
            .collect(),
    )
}

/// Jobs whose submit gaps exceed the worst-case residency of their
/// predecessor, so no job ever queues behind another. A job executes at
/// most `max_estimation_attempts + 1` times (three estimator-driven
/// failures, then the bypass attempt with the full request, which always
/// fits for these sizes), so a gap of five runtimes is already conservative.
fn arb_serial_jobs() -> impl Strategy<Value = Vec<JobSpec>> {
    prop::collection::vec(
        (
            0u32..4,
            0u32..3,
            0u64..100,
            1u64..2_000,
            1u32..12,
            1u64..33,
            0.01f64..1.0,
        ),
        1..40,
    )
    .prop_map(|tuples| {
        let mut submit_s = 0u64;
        tuples
            .into_iter()
            .map(
                |(user, app, extra_gap_s, runtime_s, nodes, req_mb, used_frac)| {
                    let spec = JobSpec {
                        user,
                        app,
                        submit_s,
                        runtime_s,
                        nodes,
                        req_mb,
                        used_frac,
                    };
                    submit_s += runtime_s * 5 + 1 + extra_gap_s;
                    spec
                },
            )
            .collect()
    })
}

fn arb_spec() -> impl Strategy<Value = EstimatorSpec> {
    prop_oneof![
        Just(EstimatorSpec::PassThrough),
        Just(EstimatorSpec::Oracle),
        Just(EstimatorSpec::paper_successive()),
        Just(EstimatorSpec::Robust(RobustConfig::default())),
        Just(EstimatorSpec::Reinforcement(ReinforcementConfig::default())),
        Just(EstimatorSpec::LastInstance(LastInstanceConfig::default())),
        Just(EstimatorSpec::Adaptive(AdaptiveConfig::default())),
    ]
}

fn arb_policy() -> impl Strategy<Value = SchedulingPolicy> {
    prop_oneof![
        Just(SchedulingPolicy::Fcfs),
        Just(SchedulingPolicy::Sjf),
        Just(SchedulingPolicy::EasyBackfill),
    ]
}

fn cluster() -> resmatch_cluster::Cluster {
    ClusterBuilder::new()
        .pool(8, 32 * MB)
        .pool(8, 24 * MB)
        .pool(8, 8 * MB)
        .build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_job_completes_or_is_dropped(
        specs in arb_jobs(),
        spec in arb_spec(),
        policy in arb_policy(),
        explicit in any::<bool>(),
    ) {
        let w = workload(&specs);
        let cfg = SimConfig::default()
            .with_scheduling(policy)
            .with_feedback(if explicit { FeedbackMode::Explicit } else { FeedbackMode::Implicit });
        let r = Simulation::new(cfg, cluster(), spec).run(&w);
        prop_assert_eq!(r.completed_jobs + r.dropped_jobs, w.len());
        prop_assert_eq!(r.records.len(), r.completed_jobs);
    }

    #[test]
    fn conservation_and_bounds(specs in arb_jobs(), spec in arb_spec()) {
        let w = workload(&specs);
        let r = Simulation::new(SimConfig::default(), cluster(), spec).run(&w);
        // Goodput equals the node-seconds of completed jobs exactly.
        let expected: f64 = r
            .records
            .iter()
            .map(|rec| rec.nodes as f64 * rec.runtime.as_secs_f64())
            .sum();
        prop_assert!((r.goodput_node_seconds - expected).abs() < 1e-6 * (1.0 + expected));
        // Utilizations are proper fractions.
        prop_assert!((0.0..=1.0 + 1e-9).contains(&r.utilization()));
        prop_assert!(r.busy_utilization() + 1e-9 >= r.utilization());
        prop_assert!(r.busy_utilization() <= 1.0 + 1e-9);
        // Queue statistics are non-negative and bounded by the cluster.
        prop_assert!(r.mean_queue_length >= 0.0);
        prop_assert!(r.mean_busy_nodes <= r.total_nodes as f64 + 1e-9);
    }

    #[test]
    fn per_job_timing_invariants(specs in arb_jobs(), spec in arb_spec()) {
        let w = workload(&specs);
        let r = Simulation::new(SimConfig::default(), cluster(), spec).run(&w);
        for rec in &r.records {
            prop_assert!(rec.final_start >= rec.submit);
            prop_assert_eq!(rec.completion, rec.final_start + rec.runtime);
            prop_assert!(rec.slowdown() >= 1.0 - 1e-12);
            prop_assert!(rec.bounded_slowdown(10.0) >= 1.0);
        }
    }

    #[test]
    fn simulation_is_deterministic(specs in arb_jobs(), spec in arb_spec()) {
        let w = workload(&specs);
        let run = || Simulation::new(SimConfig::default(), cluster(), spec).run(&w);
        prop_assert_eq!(run(), run());
    }

    #[test]
    fn oracle_never_fails_on_any_workload(specs in arb_jobs(), policy in arb_policy()) {
        let w = workload(&specs);
        let cfg = SimConfig::default().with_scheduling(policy);
        let r = Simulation::new(cfg, cluster(), EstimatorSpec::Oracle).run(&w);
        prop_assert_eq!(r.failed_executions, 0);
        prop_assert_eq!(r.wasted_node_seconds, 0.0);
    }

    #[test]
    fn policies_agree_when_no_job_queues(
        specs in arb_serial_jobs(),
        spec in arb_spec(),
        explicit in any::<bool>(),
    ) {
        // Queue discipline only matters when jobs wait behind each other;
        // on serial workloads FCFS, SJF, and EASY must be indistinguishable
        // down to the full `SimResult`. This is the equivalence oracle the
        // scheduler-path optimizations are checked against.
        let w = workload(&specs);
        let run = |policy| {
            let cfg = SimConfig::default()
                .with_scheduling(policy)
                .with_feedback(if explicit {
                    FeedbackMode::Explicit
                } else {
                    FeedbackMode::Implicit
                });
            Simulation::new(cfg, cluster(), spec).run(&w)
        };
        let fcfs = run(SchedulingPolicy::Fcfs);
        // Premise guard: the generator really produced a no-queueing trace
        // (zero-duration requeue spikes carry no time weight, and the mean
        // is non-negative, so <= 0 means exactly zero).
        prop_assert!(fcfs.mean_queue_length <= 0.0);
        prop_assert_eq!(&run(SchedulingPolicy::Sjf), &fcfs);
        prop_assert_eq!(&run(SchedulingPolicy::EasyBackfill), &fcfs);
    }

    #[test]
    fn arena_reuse_is_invisible(
        specs_a in arb_jobs(),
        specs_b in arb_jobs(),
        spec in arb_spec(),
        policy in arb_policy(),
        explicit in any::<bool>(),
    ) {
        // A dirty arena (left behind by a run over a *different* workload)
        // must not perturb a later run: reused buffers are cleared, never
        // trusted. This is the equivalence oracle for the SoA store and
        // slab event queue — the whole SimResult must match a fresh run
        // byte for byte.
        let cfg = SimConfig::default()
            .with_scheduling(policy)
            .with_feedback(if explicit { FeedbackMode::Explicit } else { FeedbackMode::Implicit });
        let wa = workload(&specs_a);
        let wb = workload(&specs_b);
        let fresh = Simulation::new(cfg, cluster(), spec).run(&wb);
        let mut arena = SimArena::default();
        let _ = Simulation::new(cfg, cluster(), spec).run_with_arena(&wa, &mut arena);
        let reused = Simulation::new(cfg, cluster(), spec).run_with_arena(&wb, &mut arena);
        prop_assert_eq!(reused, fresh);
    }

    #[test]
    fn streaming_matches_batch(
        specs in arb_jobs(),
        spec in arb_spec(),
        policy in arb_policy(),
    ) {
        // Feeding jobs one at a time through the streaming entry point is
        // indistinguishable from handing over the whole trace.
        let w = workload(&specs);
        let cfg = SimConfig::default().with_scheduling(policy);
        let batch = Simulation::new(cfg, cluster(), spec).run(&w);
        let streamed = Simulation::new(cfg, cluster(), spec)
            .run_stream(w.jobs().iter().cloned());
        prop_assert_eq!(streamed, batch);
    }

    #[test]
    fn estimation_never_loses_to_baseline_badly(specs in arb_jobs()) {
        // Whatever the workload, Algorithm 1's goodput utilization stays
        // within a whisker of the baseline's (it can spend a little on
        // probing failures, never more).
        let w = workload(&specs);
        let base = Simulation::new(SimConfig::default(), cluster(), EstimatorSpec::PassThrough)
            .run(&w);
        let est = Simulation::new(
            SimConfig::default(),
            cluster(),
            EstimatorSpec::paper_successive(),
        )
        .run(&w);
        prop_assert!(
            est.utilization() >= base.utilization() * 0.85 - 1e-9,
            "estimation {} vs baseline {}",
            est.utilization(),
            base.utilization()
        );
    }
}
