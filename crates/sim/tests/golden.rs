//! Golden-equivalence tests: fixed-seed simulations rendered to a canonical
//! text form and compared byte-for-byte against files under `tests/golden/`.
//!
//! These exist to pin the engine's *outcomes* while its hot paths are
//! optimized: group-scoped estimate invalidation, incremental candidate
//! counts, event coalescing, and slab reuse must all be invisible here.
//! Floats are rendered as exact IEEE-754 bit patterns, so even a
//! last-ulp drift fails the diff.
//!
//! To regenerate after an *intentional* semantic change:
//!
//! ```text
//! GOLDEN_REGEN=1 cargo test -p resmatch-sim --test golden
//! ```
//!
//! and review the resulting diffs like any other code change.

use resmatch_cluster::builder::paper_cluster;
use resmatch_cluster::MatchAll;
use resmatch_sim::prelude::*;
use resmatch_workload::load::scale_to_load;
use resmatch_workload::synthetic::{generate, Cm5Config};
use resmatch_workload::{Time, Workload};

use std::fmt::Write as _;
use std::path::PathBuf;

const TOTAL_NODES: u32 = 1024;

/// The shared base trace: 600 synthetic CM-5 jobs, compressed to ~90%
/// offered load so queues actually form and estimates get refreshed
/// in-queue.
fn base_workload() -> Workload {
    let cfg = Cm5Config {
        jobs: 600,
        ..Cm5Config::default()
    };
    let mut w = generate(&cfg, 42);
    w.retain_max_nodes(512);
    scale_to_load(&w, TOTAL_NODES, 0.9)
}

/// Render a float as value plus exact bit pattern: bit-for-bit regression
/// detection that stays human-diffable.
fn f(x: f64) -> String {
    format!("{x:.6}/{:016x}", x.to_bits())
}

fn render(r: &SimResult) -> String {
    let mut out = String::new();
    writeln!(out, "estimator: {}", r.estimator).unwrap();
    writeln!(out, "completed_jobs: {}", r.completed_jobs).unwrap();
    writeln!(out, "dropped_jobs: {}", r.dropped_jobs).unwrap();
    writeln!(out, "total_executions: {}", r.total_executions).unwrap();
    writeln!(out, "failed_executions: {}", r.failed_executions).unwrap();
    writeln!(out, "events_processed: {}", r.events_processed).unwrap();
    writeln!(out, "total_nodes: {}", r.total_nodes).unwrap();
    writeln!(out, "first_submit_ms: {}", r.first_submit.as_millis()).unwrap();
    writeln!(out, "last_completion_ms: {}", r.last_completion.as_millis()).unwrap();
    writeln!(out, "goodput_node_seconds: {}", f(r.goodput_node_seconds)).unwrap();
    writeln!(out, "wasted_node_seconds: {}", f(r.wasted_node_seconds)).unwrap();
    writeln!(out, "mean_queue_length: {}", f(r.mean_queue_length)).unwrap();
    writeln!(out, "mean_busy_nodes: {}", f(r.mean_busy_nodes)).unwrap();
    for p in &r.pool_stats {
        writeln!(
            out,
            "pool: mem_kb={} nodes={} busy={}",
            p.mem_kb,
            p.nodes,
            f(p.mean_busy_fraction)
        )
        .unwrap();
    }
    for rec in &r.records {
        writeln!(
            out,
            "record: id={} submit={} start={} completion={} runtime={} nodes={} \
             failed={} lowered={} benefited={} wasted={}",
            rec.id.0,
            rec.submit.as_millis(),
            rec.final_start.as_millis(),
            rec.completion.as_millis(),
            rec.runtime.as_millis(),
            rec.nodes,
            rec.failed_executions,
            rec.lowered,
            rec.benefited,
            f(rec.wasted_node_seconds),
        )
        .unwrap();
    }
    for e in r.trace_log.entries() {
        writeln!(
            out,
            "trace: t={} id={} kind={:?}",
            e.time.as_millis(),
            e.job.0,
            e.kind
        )
        .unwrap();
    }
    out
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.txt"))
}

fn check(name: &str, result: &SimResult) {
    let rendered = render(result);
    let path = golden_path(name);
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &rendered).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run with GOLDEN_REGEN=1 to create it",
            path.display()
        )
    });
    if rendered != expected {
        // Locate the first differing line so the failure is actionable
        // without dumping two multi-thousand-line blobs.
        let mismatch = rendered
            .lines()
            .zip(expected.lines())
            .enumerate()
            .find(|(_, (a, b))| a != b);
        match mismatch {
            Some((i, (got, want))) => panic!(
                "golden mismatch for `{name}` at line {}:\n  got:  {got}\n  want: {want}\n\
                 (if the change is intentional, regenerate with GOLDEN_REGEN=1)",
                i + 1
            ),
            None => panic!(
                "golden mismatch for `{name}`: line counts differ (got {}, want {})",
                rendered.lines().count(),
                expected.lines().count()
            ),
        }
    }
}

fn run(cfg: SimConfig, spec: EstimatorSpec, workload: &Workload) -> SimResult {
    Simulation::new(cfg, paper_cluster(24), spec).run(workload)
}

#[test]
fn golden_fcfs_successive_implicit() {
    let w = base_workload();
    let r = run(SimConfig::default(), EstimatorSpec::paper_successive(), &w);
    check("fcfs_successive_implicit", &r);
}

#[test]
fn golden_easy_successive_implicit() {
    let w = base_workload();
    let cfg = SimConfig::default().with_scheduling(SchedulingPolicy::EasyBackfill);
    let r = run(cfg, EstimatorSpec::paper_successive(), &w);
    check("easy_successive_implicit", &r);
}

#[test]
fn golden_sjf_successive_implicit() {
    let w = base_workload();
    let cfg = SimConfig::default().with_scheduling(SchedulingPolicy::Sjf);
    let r = run(cfg, EstimatorSpec::paper_successive(), &w);
    check("sjf_successive_implicit", &r);
}

#[test]
fn golden_fcfs_passthrough() {
    let w = base_workload();
    let r = run(SimConfig::default(), EstimatorSpec::PassThrough, &w);
    check("fcfs_passthrough", &r);
}

#[test]
fn golden_fcfs_oracle() {
    let w = base_workload();
    let r = run(SimConfig::default(), EstimatorSpec::Oracle, &w);
    check("fcfs_oracle", &r);
}

#[test]
fn golden_fcfs_successive_explicit() {
    let w = base_workload();
    let cfg = SimConfig::default().with_feedback(FeedbackMode::Explicit);
    let r = run(cfg, EstimatorSpec::paper_successive(), &w);
    check("fcfs_successive_explicit", &r);
}

#[test]
fn golden_easy_lastinstance_explicit() {
    use resmatch_core::last_instance::LastInstanceConfig;
    let w = base_workload();
    let cfg = SimConfig::default()
        .with_scheduling(SchedulingPolicy::EasyBackfill)
        .with_feedback(FeedbackMode::Explicit);
    let r = run(
        cfg,
        EstimatorSpec::LastInstance(LastInstanceConfig::default()),
        &w,
    );
    check("easy_lastinstance_explicit", &r);
}

#[test]
fn golden_sjf_quantile_explicit() {
    use resmatch_core::quantile::QuantileConfig;
    let w = base_workload();
    let cfg = SimConfig::default()
        .with_scheduling(SchedulingPolicy::Sjf)
        .with_feedback(FeedbackMode::Explicit);
    let r = run(cfg, EstimatorSpec::Quantile(QuantileConfig::default()), &w);
    check("sjf_quantile_explicit", &r);
}

/// FNV-1a over the canonical rendering: one u64 that moves iff any byte of
/// the golden output moves.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Assert a fixed-seed run's canonical rendering digests to a pinned
/// constant that cannot be silently regenerated: if a hash moves, the
/// engine's observable behavior changed and the change must be justified
/// alongside the new value.
fn check_pinned(name: &str, expected: u64, result: &SimResult) {
    let got = fnv1a(render(result).as_bytes());
    assert_eq!(
        got, expected,
        "fixed-seed SimResult digest for `{name}` moved (got {got:#018x}); \
         the engine's observable behavior changed — update the constant \
         only with an intentional semantic change"
    );
}

/// Pinned digest of the fixed-seed FCFS + successive-estimator run.
///
/// This guards the panic-site burn-down (unwrap/expect → documented
/// invariants, `let-else` head peeking in the backfill loop) the same way
/// the golden files do, but as a single constant that cannot be silently
/// regenerated.
#[test]
fn golden_fcfs_successive_hash_pinned() {
    let w = base_workload();
    let r = run(SimConfig::default(), EstimatorSpec::paper_successive(), &w);
    check_pinned("fcfs_successive", 0x9404_ab49_01a3_c631, &r);
}

/// Pinned digest of the EASY-backfill + successive-estimator run. Pinned
/// *before* the incremental release-table / shadow-cache overhaul so the
/// new backfill path is machine-checked byte-identical to the per-pass
/// rebuild it replaced.
#[test]
fn golden_easy_successive_hash_pinned() {
    let w = base_workload();
    let cfg = SimConfig::default().with_scheduling(SchedulingPolicy::EasyBackfill);
    let r = run(cfg, EstimatorSpec::paper_successive(), &w);
    check_pinned("easy_successive", 0xa5e6_18e2_905d_f119, &r);
}

/// Pinned digest of the SJF + successive-estimator run. Pinned *before*
/// the O(queue²) `min_by_key` scan was replaced by the index heap so the
/// `(requested_runtime, queue-order)` tie-break is machine-checked.
#[test]
fn golden_sjf_successive_hash_pinned() {
    let w = base_workload();
    let cfg = SimConfig::default().with_scheduling(SchedulingPolicy::Sjf);
    let r = run(cfg, EstimatorSpec::paper_successive(), &w);
    check_pinned("sjf_successive", 0xe4dc_bc47_2ad5_a974, &r);
}

/// Pinned digest of EASY backfill with a stateful estimator and explicit
/// feedback: in-queue refreshes interleave with the backfill scan here, so
/// this pins the order of estimator calls, not just of starts.
#[test]
fn golden_easy_lastinstance_hash_pinned() {
    use resmatch_core::last_instance::LastInstanceConfig;
    let w = base_workload();
    let cfg = SimConfig::default()
        .with_scheduling(SchedulingPolicy::EasyBackfill)
        .with_feedback(FeedbackMode::Explicit);
    let r = run(
        cfg,
        EstimatorSpec::LastInstance(LastInstanceConfig::default()),
        &w,
    );
    check_pinned("easy_lastinstance_explicit", 0xa316_a849_9a9d_9250, &r);
}

/// The full-scale trace: the calibrated 122,055-job CM5 workload at its
/// natural offered load (~0.45 against the 1024-node paper cluster), with
/// the full-machine jobs removed — exactly the preprocessing the paper
/// applies and the repro pipeline's default scale.
fn trace_workload() -> Workload {
    let mut w = generate(&Cm5Config::default(), 42);
    w.retain_max_nodes(512);
    w
}

/// Pinned digest of the full 122,055-job trace under FCFS + the paper's
/// successive estimator. Trace-scale digests are release-only: the
/// debug-build EASY cross-check and slot asserts make a 122k-job run take
/// minutes, and CI exercises these with `cargo test --release`.
#[test]
#[cfg_attr(debug_assertions, ignore = "trace-scale: run under --release")]
fn golden_trace_fcfs_successive_hash_pinned() {
    let w = trace_workload();
    let r = run(SimConfig::default(), EstimatorSpec::paper_successive(), &w);
    check_pinned("trace_fcfs_successive", 0xdf1e_4942_0b10_fda7, &r);
}

/// Pinned digest of the full trace under SJF + successive estimation.
#[test]
#[cfg_attr(debug_assertions, ignore = "trace-scale: run under --release")]
fn golden_trace_sjf_successive_hash_pinned() {
    let w = trace_workload();
    let cfg = SimConfig::default().with_scheduling(SchedulingPolicy::Sjf);
    let r = run(cfg, EstimatorSpec::paper_successive(), &w);
    check_pinned("trace_sjf_successive", 0x9efb_45c1_ecc9_8ee1, &r);
}

/// Pinned digest of the full trace under EASY backfill + successive
/// estimation — the configuration the ≥2M events/sec throughput target is
/// quoted for, so the fast path and the correct path are pinned together.
#[test]
#[cfg_attr(debug_assertions, ignore = "trace-scale: run under --release")]
fn golden_trace_easy_successive_hash_pinned() {
    let w = trace_workload();
    let cfg = SimConfig::default().with_scheduling(SchedulingPolicy::EasyBackfill);
    let r = run(cfg, EstimatorSpec::paper_successive(), &w);
    check_pinned("trace_easy_successive", 0x1706_9e7d_e28c_d27f, &r);
}

/// The matchmaking seam must be invisible when the matcher constrains
/// nothing: a [`MatchAll`] run renders byte-identically against the same
/// golden files — and digests to the same pinned constants — as the
/// native capacity-only path, under every scheduling policy. This is the
/// proof that `try_allocate_matched` and the matched counting variants
/// walk pools in exactly the historical order.
#[test]
fn golden_matchall_matchmaking_is_byte_identical() {
    let w = base_workload();
    let matched = |cfg: SimConfig| {
        Simulation::new(cfg, paper_cluster(24), EstimatorSpec::paper_successive())
            .with_matchmaking(Box::new(MatchAll))
            .run(&w)
    };

    let r = matched(SimConfig::default());
    check("fcfs_successive_implicit", &r);
    check_pinned("fcfs_successive", 0x9404_ab49_01a3_c631, &r);

    let r = matched(SimConfig::default().with_scheduling(SchedulingPolicy::EasyBackfill));
    check("easy_successive_implicit", &r);
    check_pinned("easy_successive", 0xa5e6_18e2_905d_f119, &r);

    let r = matched(SimConfig::default().with_scheduling(SchedulingPolicy::Sjf));
    check("sjf_successive_implicit", &r);
    check_pinned("sjf_successive", 0xe4dc_bc47_2ad5_a974, &r);
}

/// Explicit feedback under [`MatchAll`]: the matchmaking-mode feedback
/// path reports the allocation's disk floor instead of the legacy zero,
/// but a memory-only estimator consumes only the memory channel — so the
/// run must still render byte-identically.
#[test]
fn golden_matchall_explicit_feedback_is_byte_identical() {
    let w = base_workload();
    let cfg = SimConfig::default().with_feedback(FeedbackMode::Explicit);
    let r = Simulation::new(cfg, paper_cluster(24), EstimatorSpec::paper_successive())
        .with_matchmaking(Box::new(MatchAll))
        .run(&w);
    check("fcfs_successive_explicit", &r);
}

/// The matchmaking bench workload and cluster, byte-for-byte the
/// `matchmaking_tier` configuration in `bench_report` at its default
/// scale: the 5,000-job trace rescaled to saturating load and enriched
/// with synthetic disk/package attributes, allocated over a split cluster
/// whose 32 MB half carries a finite scratch partition, the licensed
/// package set, and an `Arch` tag.
fn matchmaking_workload() -> Workload {
    use resmatch_workload::attrs::{synthesize_attributes, AttrConfig};
    let cfg = Cm5Config {
        jobs: 5_000,
        ..Cm5Config::default()
    };
    let mut w = generate(&cfg, 42);
    w.retain_max_nodes(512);
    let mut w = scale_to_load(&w, TOTAL_NODES, 1.0);
    synthesize_attributes(&mut w, &AttrConfig::default(), 42);
    w
}

fn matchmaking_cluster_ads() -> (resmatch_cluster::Cluster, Vec<resmatch_classad::PoolAd>) {
    use resmatch_classad::PoolAd;
    use resmatch_cluster::{Capacity, ClusterBuilder};
    let big = Capacity::new(32 * 1024, 2 * 1024 * 1024, 0xF);
    let small = Capacity::memory(24 * 1024);
    let cluster = ClusterBuilder::new()
        .pool_with(512, big)
        .pool_with(512, small)
        .build();
    let ads = vec![PoolAd::new(big).with_arch("cm5"), PoolAd::new(small)];
    (cluster, ads)
}

fn run_matchmaking(cfg: SimConfig, rank: Option<&str>) -> SimResult {
    let w = matchmaking_workload();
    let (cluster, ads) = matchmaking_cluster_ads();
    let mut mm = resmatch_classad::Matchmaker::new(&ads);
    if let Some(rank) = rank {
        mm = mm.with_rank(rank).expect("static rank expression");
    }
    Simulation::new(cfg, cluster, EstimatorSpec::paper_successive())
        .with_matchmaking(Box::new(mm))
        .run(&w)
}

/// Pinned digest of the `matchmaking_fcfs_successive` bench scenario.
/// All four matchmaking digests were pinned *before* the indexed
/// eligibility / program-specialization rework of the matchmaker's hot
/// path, so the speedup is machine-checked byte-identical to the
/// interpret-per-pool evaluator it replaced (the same pre-pin discipline
/// as the PR-5 engine-cache overhaul).
#[test]
fn golden_matchmaking_fcfs_successive_hash_pinned() {
    let r = run_matchmaking(SimConfig::default(), None);
    check_pinned("matchmaking_fcfs_successive", 0x5e30_1bed_f86a_1b1e, &r);
}

/// Pinned digest of the `matchmaking_sjf_successive` bench scenario.
#[test]
fn golden_matchmaking_sjf_successive_hash_pinned() {
    let cfg = SimConfig::default().with_scheduling(SchedulingPolicy::Sjf);
    let r = run_matchmaking(cfg, None);
    check_pinned("matchmaking_sjf_successive", 0x5c01_28f4_979e_e207, &r);
}

/// Pinned digest of the `matchmaking_easy_successive` bench scenario —
/// the configuration whose shadow walks and backfill hunts hammer the
/// matcher hardest, and the one the throughput work targets first.
#[test]
fn golden_matchmaking_easy_successive_hash_pinned() {
    let cfg = SimConfig::default().with_scheduling(SchedulingPolicy::EasyBackfill);
    let r = run_matchmaking(cfg, None);
    check_pinned("matchmaking_easy_successive", 0xfc7e_a838_e815_29e6, &r);
}

/// Pinned digest of the `matchmaking_fcfs_ranked` bench scenario: a
/// machine-side `Rank` turns first-fit into best-fit by memory, covering
/// the candidate-sort path.
#[test]
fn golden_matchmaking_fcfs_ranked_hash_pinned() {
    let r = run_matchmaking(SimConfig::default(), Some("other.Memory"));
    check_pinned("matchmaking_fcfs_ranked", 0x2111_68e7_c6fe_5a69, &r);
}

#[test]
fn golden_fcfs_robust_implicit() {
    use resmatch_core::robust::RobustConfig;
    let w = base_workload();
    let r = run(
        SimConfig::default(),
        EstimatorSpec::Robust(RobustConfig::default()),
        &w,
    );
    check("fcfs_robust_implicit", &r);
}

#[test]
fn golden_fcfs_reinforcement_fault_injection() {
    use resmatch_core::reinforcement::ReinforcementConfig;
    // Exercises the Global scope path (context-dependent estimates, RNG in
    // the estimator) plus the engine's own fault-injection RNG draws.
    let w = base_workload();
    let cfg = SimConfig::default().with_false_positive_rate(0.05);
    let r = run(
        cfg,
        EstimatorSpec::Reinforcement(ReinforcementConfig::default()),
        &w,
    );
    check("fcfs_reinforcement_fault_injection", &r);
}

#[test]
fn golden_fcfs_successive_churn_with_trace() {
    // Dynamic membership: half the 24 MB pool leaves mid-trace and returns
    // near the end. The trace log is rendered too, pinning every
    // per-decision admission/start/completion — the strictest check here.
    let w = base_workload();
    let jobs = w.jobs();
    let t0 = jobs.first().map(|j| j.submit).unwrap_or(Time::ZERO);
    let t1 = jobs.last().map(|j| j.submit).unwrap_or(Time::ZERO);
    let span_ms = t1.saturating_sub(t0).as_millis();
    let at = |frac: f64| t0 + Time::from_millis((span_ms as f64 * frac) as u64);
    let churn = vec![
        ChurnEvent {
            time: at(0.25),
            mem_kb: 24 * 1024,
            delta: -256,
        },
        ChurnEvent {
            time: at(0.50),
            mem_kb: 32 * 1024,
            delta: -128,
        },
        ChurnEvent {
            time: at(0.75),
            mem_kb: 24 * 1024,
            delta: 256,
        },
        ChurnEvent {
            time: at(0.90),
            mem_kb: 32 * 1024,
            delta: 128,
        },
    ];
    let r = Simulation::builder()
        .cluster(paper_cluster(24))
        .estimator(EstimatorSpec::paper_successive())
        .churn(churn.clone())
        .trace_log()
        .build()
        .expect("cluster and estimator are set")
        .run(&w);
    check("fcfs_successive_churn_with_trace", &r);
}

#[test]
fn golden_unchanged_under_zero_one_and_stacked_observers() {
    // The observer layer must be invisible to the simulation itself: a
    // fixed-seed run renders byte-identically against the same golden file
    // whether zero, one, or several observers ride along. Only the trace
    // log differs, and only because TraceLogObserver deposits one.
    let w = base_workload();

    // Zero observers (already covered by golden_fcfs_successive_implicit,
    // repeated here so this test stands alone).
    let r = run(SimConfig::default(), EstimatorSpec::paper_successive(), &w);
    check("fcfs_successive_implicit", &r);

    // One observer: counters only — no trace log, so the render is
    // identical to the unobserved golden.
    let counters = CountersObserver::new();
    let observed = Simulation::builder()
        .cluster(paper_cluster(24))
        .estimator(EstimatorSpec::paper_successive())
        .observer(Box::new(counters.clone()))
        .build()
        .unwrap()
        .run(&w);
    check("fcfs_successive_implicit", &observed);
    assert_eq!(counters.snapshot().counters, observed.counters);

    // Stacked: counters + progress (into a captured sink) + trace log.
    let counters = CountersObserver::new();
    let sink_lines = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
    let sink = {
        let lines = sink_lines.clone();
        move |line: &str| lines.lock().unwrap().push(line.to_string())
    };
    let stacked = Simulation::builder()
        .cluster(paper_cluster(24))
        .estimator(EstimatorSpec::paper_successive())
        .observer(Box::new(counters.clone()))
        .observer(Box::new(
            ProgressObserver::new("golden", 500).with_sink(sink),
        ))
        .trace_log()
        .build()
        .unwrap()
        .run(&w);
    // The trace-log render of the same run is pinned by its own golden.
    check("fcfs_successive_trace", &stacked);
    assert_eq!(counters.snapshot().counters, stacked.counters);
    assert!(
        !sink_lines.lock().unwrap().is_empty(),
        "progress observer must have emitted at least one line"
    );

    // And modulo the log, the stacked run equals the unobserved one.
    let mut quiet = stacked.clone();
    quiet.trace_log = TraceLog::default();
    assert_eq!(quiet, r);
}
