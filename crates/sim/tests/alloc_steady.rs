//! Steady-state allocation discipline of arena-reused sweeps.
//!
//! A sweep worker that reuses a [`SimArena`] must stop allocating once its
//! buffers are warm: after the first pass over the load points, every later
//! point runs entirely inside recycled capacity. This test wraps the global
//! allocator with a counter and asserts two things about the second pass of
//! a 20-point load sweep:
//!
//! 1. every point costs the same small, constant number of allocations
//!    (the per-run `SimResult` scaffolding — pool stats, estimator name);
//! 2. that constant does not grow with trace size (600 vs 1200 jobs), i.e.
//!    the engine's per-job state really lives in the arena.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use resmatch_cluster::builder::paper_cluster;
use resmatch_sim::prelude::*;
use resmatch_workload::load::scale_to_load_into;
use resmatch_workload::synthetic::{generate, Cm5Config};
use resmatch_workload::Workload;

/// Counts allocation *events* (alloc + realloc). Deallocation is free-list
/// recycling's whole point, so it is not counted.
struct CountingAlloc;

static ALLOC_EVENTS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Run two serial passes over a 20-point load sweep with one arena and one
/// rescale buffer (exactly the per-worker state `run_pooled_with` holds)
/// and return the per-point allocation counts of both passes.
fn sweep_alloc_counts(jobs: usize) -> (Vec<u64>, Vec<u64>) {
    let mut w = generate(
        &Cm5Config {
            jobs,
            ..Cm5Config::default()
        },
        42,
    );
    w.retain_max_nodes(512);
    let cluster = paper_cluster(24);
    let loads: Vec<f64> = (0..20).map(|i| 0.3 + 0.05 * i as f64).collect();
    let cfg = SimConfig::default().with_retain_records(false);

    let mut arena = SimArena::default();
    let mut buf: Vec<resmatch_workload::Job> = Vec::new();
    let mut passes = (Vec::new(), Vec::new());
    for pass in 0..2 {
        for &load in &loads {
            let sim = Simulation::new(cfg, cluster.clone(), EstimatorSpec::PassThrough);
            let before = ALLOC_EVENTS.load(Ordering::Relaxed);
            scale_to_load_into(&w, cluster.total_nodes(), load, &mut buf);
            let scaled = Workload::from_sorted(std::mem::take(&mut buf));
            let result = sim.run_with_arena(&scaled, &mut arena);
            let after = ALLOC_EVENTS.load(Ordering::Relaxed);
            assert!(result.completed_jobs > 0, "sanity: the sweep point ran");
            buf = scaled.into_jobs();
            let counts = if pass == 0 {
                &mut passes.0
            } else {
                &mut passes.1
            };
            counts.push(after - before);
        }
    }
    passes
}

#[test]
fn warm_sweep_points_allocate_a_job_count_independent_constant() {
    // A warm point's budget: the per-run `SimResult` scaffolding (estimator
    // name string, pool-stats vector) plus at most a few spare-buffer
    // regrows when a wide job pops a buffer warmed by a narrow one. What
    // matters is that the budget is O(1) — it depends on neither the trace
    // length nor the event count.
    const WARM_BUDGET: u64 = 8;

    let (cold_small, warm_small) = sweep_alloc_counts(600);
    let (_, warm_large) = sweep_alloc_counts(1200);
    assert!(
        warm_small.iter().all(|&c| c <= WARM_BUDGET),
        "second-pass (warm) points must run inside recycled capacity: {warm_small:?}"
    );
    assert!(
        warm_large.iter().all(|&c| c <= WARM_BUDGET),
        "per-point allocation count must not grow with trace size: {warm_large:?}"
    );
    // Contrast with the cold first point, which pays the arena warm-up.
    assert!(
        cold_small[0] > 2 * WARM_BUDGET,
        "expected the cold first point to dominate warm points: {cold_small:?}"
    );
}
