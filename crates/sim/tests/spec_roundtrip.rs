//! Property test: `EstimatorSpec`'s `Display` output always parses back
//! to the same spec (for specs whose non-(α, β) configuration is default,
//! which is exactly what the grammar can express).

use proptest::prelude::*;
use resmatch_sim::prelude::*;

fn arb_base() -> impl Strategy<Value = EstimatorSpec> {
    // Index into the canonical name list; every name parses by
    // construction (covered by the unit tests in `spec.rs`).
    (0usize..EstimatorSpec::NAMES.len())
        .prop_map(|i| EstimatorSpec::NAMES[i].parse::<EstimatorSpec>().unwrap())
}

/// α/β values spanning the interesting shapes: the defaults (suffix
/// omitted), round values, fractional values, very large and very small
/// magnitudes — all finite, so `Display` emits them losslessly.
fn arb_param() -> impl Strategy<Value = f64> {
    prop_oneof![
        Just(2.0),
        Just(0.0),
        Just(-1.5),
        0.0001f64..10_000.0,
        -3.0f64..3.0,
        1e-12f64..1e-6,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn display_parses_back_to_the_same_spec(
        base in arb_base(),
        alpha in arb_param(),
        beta in arb_param(),
    ) {
        let spec = base.with_alpha_beta(alpha, beta);
        let rendered = spec.to_string();
        let parsed: EstimatorSpec = rendered.parse().unwrap_or_else(|e| {
            panic!("{rendered:?} failed to re-parse: {e}")
        });
        prop_assert_eq!(parsed, spec, "render was {}", rendered);
    }

    #[test]
    fn parsing_arbitrary_bytes_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..40)) {
        let s = String::from_utf8_lossy(&bytes);
        let _ = s.parse::<EstimatorSpec>();
    }
}
