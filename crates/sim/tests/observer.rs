//! Integration tests for the observer layer: counters agree with the
//! engine's own bookkeeping, observation never perturbs results, and
//! sweep-level observers see every point from the worker threads.

use std::sync::{Arc, Mutex};

use resmatch_cluster::builder::paper_cluster;
use resmatch_sim::prelude::*;
use resmatch_workload::load::scale_to_load;
use resmatch_workload::synthetic::{generate, Cm5Config};
use resmatch_workload::Workload;

fn workload(jobs: usize) -> Workload {
    let mut w = generate(
        &Cm5Config {
            jobs,
            ..Cm5Config::default()
        },
        42,
    );
    w.retain_max_nodes(512);
    scale_to_load(&w, 1024, 0.9)
}

fn sim(spec: EstimatorSpec) -> Simulation {
    Simulation::new(SimConfig::default(), paper_cluster(24), spec)
}

#[test]
fn counters_observer_matches_engine_counters() {
    let w = workload(500);
    let counters = CountersObserver::new();
    let r = sim(EstimatorSpec::paper_successive())
        .with_observer(Box::new(counters.clone()))
        .run(&w);
    let snap = counters.snapshot();
    assert_eq!(snap.counters, r.counters, "observer and engine disagree");
    assert_eq!(snap.runs_started, 1);
    assert_eq!(snap.runs_finished, 1);
    assert!(snap.run_wall_s >= 0.0);

    // Cross-check against the engine's first-class metrics.
    assert_eq!(r.counters.completed as usize, r.completed_jobs);
    assert_eq!(r.counters.failed, r.failed_executions);
    assert_eq!(r.counters.started, r.total_executions);
    assert_eq!(
        r.counters.admissions,
        r.counters.arrivals + r.counters.requeued,
        "every admission is an arrival or a requeue"
    );
    assert!(r.counters.requeued > 0, "successive probing must requeue");
}

#[test]
fn observed_run_equals_unobserved_run_modulo_log() {
    let w = workload(400);
    let quiet = sim(EstimatorSpec::paper_successive()).run(&w);
    let mut observed = sim(EstimatorSpec::paper_successive())
        .with_observer(Box::new(TraceLogObserver::new()))
        .run(&w);
    assert!(!observed.trace_log.is_empty());
    observed.trace_log = TraceLog::default();
    assert_eq!(quiet, observed);
}

#[test]
fn counters_are_tracked_without_any_observer() {
    let w = workload(300);
    let r = sim(EstimatorSpec::PassThrough).run(&w);
    assert_eq!(r.counters.completed as usize, r.completed_jobs);
    assert!(r.counters.arrivals > 0);
    assert_eq!(r.counters.requeued, 0, "pass-through never requeues");
}

#[test]
fn load_sweep_streams_counters_and_points() {
    let w = workload(300);
    let cluster = paper_cluster(24);
    let cfg = SweepConfig::default().with_loads(vec![0.5, 1.0]);
    let spec = EstimatorSpec::paper_successive();

    let plain = run_load_sweep(&w, &cluster, spec, &cfg);
    let counters = CountersObserver::new();
    let observed = run_load_sweep_observed(&w, &cluster, spec, &cfg, Some(&counters));
    assert_eq!(plain, observed, "observation must not perturb the sweep");

    let snap = counters.snapshot();
    assert_eq!(snap.sweep_points, 2);
    assert_eq!(snap.runs_started, 2);
    assert_eq!(snap.runs_finished, 2);
    let expected: RunCounters = observed.iter().fold(RunCounters::default(), |mut acc, p| {
        let c = &p.result.counters;
        acc.arrivals += c.arrivals;
        acc.admissions += c.admissions;
        acc.started += c.started;
        acc.completed += c.completed;
        acc.failed += c.failed;
        acc.requeued += c.requeued;
        acc.estimator_bypassed += c.estimator_bypassed;
        acc.churn_events += c.churn_events;
        acc
    });
    assert_eq!(snap.counters, expected, "aggregate across points");
}

#[test]
fn cluster_sweep_observes_both_runs_per_point() {
    let w = workload(250);
    let spec = EstimatorSpec::paper_successive();
    let plain = run_cluster_sweep(&w, &[24, 32], spec, SimConfig::default(), 1.0);
    let counters = CountersObserver::new();
    let observed = run_cluster_sweep_observed(
        &w,
        &[24, 32],
        spec,
        SimConfig::default(),
        1.0,
        Some(&counters),
    );
    assert_eq!(plain, observed);

    let snap = counters.snapshot();
    assert_eq!(snap.sweep_points, 2);
    // Baseline and estimated both observed: two runs per point.
    assert_eq!(snap.runs_finished, 4);
    let expected_arrivals: u64 = observed
        .iter()
        .map(|p| p.baseline.counters.arrivals + p.estimated.counters.arrivals)
        .sum();
    assert_eq!(snap.counters.arrivals, expected_arrivals);
}

#[test]
fn progress_observer_reports_through_custom_sink() {
    let w = workload(200);
    let lines = Arc::new(Mutex::new(Vec::new()));
    let sink = {
        let lines = lines.clone();
        move |line: &str| lines.lock().unwrap().push(line.to_string())
    };
    let progress = ProgressObserver::new("test", 50).with_sink(sink);
    let r = sim(EstimatorSpec::paper_successive())
        .with_observer(Box::new(progress.clone()))
        .run(&w);
    assert!(r.completed_jobs > 0);
    let lines = lines.lock().unwrap();
    assert!(!lines.is_empty(), "expected periodic progress lines");
    assert!(lines.iter().all(|l| l.contains("[test]")), "{lines:?}");
}

#[test]
fn sweep_observer_reports_progress_per_point() {
    let w = workload(200);
    let cluster = paper_cluster(24);
    let cfg = SweepConfig::default().with_loads(vec![0.5, 0.8, 1.1]);
    let lines = Arc::new(Mutex::new(Vec::new()));
    let sink = {
        let lines = lines.clone();
        move |line: &str| lines.lock().unwrap().push(line.to_string())
    };
    // Large tick interval: only the per-point completion lines fire.
    let progress = ProgressObserver::new("sweep", u64::MAX).with_sink(sink);
    run_load_sweep_observed(
        &w,
        &cluster,
        EstimatorSpec::PassThrough,
        &cfg,
        Some(&progress),
    );
    let lines = lines.lock().unwrap();
    let done: Vec<_> = lines.iter().filter(|l| l.contains("done")).collect();
    assert_eq!(done.len(), 3, "one completion line per point: {lines:?}");
    assert!(done.iter().any(|l| l.contains("(3/3)")), "{done:?}");
}

#[test]
fn multi_observer_stacks_without_perturbing() {
    let w = workload(250);
    let counters = CountersObserver::new();
    let quiet = sim(EstimatorSpec::paper_successive()).run(&w);
    let mut stacked = sim(EstimatorSpec::paper_successive())
        .with_observer(Box::new(TraceLogObserver::new()))
        .with_observer(Box::new(counters.clone()))
        .run(&w);
    assert_eq!(counters.snapshot().counters, stacked.counters);
    assert!(!stacked.trace_log.is_empty());
    stacked.trace_log = TraceLog::default();
    assert_eq!(quiet, stacked);
}

#[test]
fn builder_round_trip_equals_positional_constructor() {
    let w = workload(200);
    let positional = sim(EstimatorSpec::paper_successive()).run(&w);
    let built = Simulation::builder()
        .config(SimConfig::default())
        .cluster(paper_cluster(24))
        .estimator(EstimatorSpec::paper_successive())
        .build()
        .expect("complete builder")
        .run(&w);
    assert_eq!(positional, built);
}
